// Package bench reproduces every table and figure in the paper's
// evaluation: the ZCAV and tagged-queue effects on local reads
// (Figures 1-2), scheduler fairness distributions (Figure 3), NFS over
// UDP and TCP (Figures 4-5), the read-ahead heuristics and nfsheur
// table (Figures 6-7), and the stride/cursor results (Figure 8,
// Table 1) — plus ablations for the design choices DESIGN.md calls out.
//
// Each experiment runs its benchmark repeatedly (the paper averages at
// least ten runs), on a fresh seeded testbed per run, and reports
// mean/stddev per cell.
package bench

import (
	"fmt"
	"strings"

	"nfstricks/internal/stats"
)

// Params controls experiment execution.
type Params struct {
	// Runs is the number of repetitions per cell (default 10, the
	// paper's minimum).
	Runs int
	// Scale divides the paper's file sizes to trade fidelity for time:
	// 1 reproduces the full 256 MB per iteration; tests use 16-64.
	Scale int
	// Seed is the base random seed; run i of a cell uses Seed+i.
	Seed int64
	// ProfileDir, when set, makes the live experiments capture a CPU
	// profile of one representative run per cell, written as
	// <ProfileDir>/<experiment>_<cell>.cpu.pprof.
	ProfileDir string
}

func (p *Params) fill() {
	if p.Runs <= 0 {
		p.Runs = 10
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Series is one line on a figure: a label and a sample per X value.
// Samples retain their raw per-run values (stats.Sample.Values), so a
// saved artifact can be re-tested against another run with rank
// statistics — the compare verb needs the runs, not just their summary.
type Series struct {
	Label   string
	Samples []stats.Sample
	// Better declares which direction is an improvement for this
	// series: "higher" (throughput-like, the default) or "lower"
	// (latency-like). compare falls back to a label heuristic when the
	// field is absent (artifacts written before it existed).
	Better string `json:",omitempty"`
}

// BetterLower and BetterHigher are the Series.Better values.
const (
	BetterLower  = "lower"
	BetterHigher = "higher"
)

// LowerIsBetter reports whether a decrease in this series is an
// improvement, trusting the explicit Better field and falling back to
// recognizing latency-flavored labels for artifacts that predate it.
func (s *Series) LowerIsBetter() bool {
	switch s.Better {
	case BetterLower:
		return true
	case BetterHigher:
		return false
	}
	label := strings.ToLower(s.Label)
	for _, tok := range []string{"latency", "p50", "p99", "time", "allocs", "kb/op", "b/op", "error", "flushes"} {
		if strings.Contains(label, tok) {
			return true
		}
	}
	return false
}

// Result is a reproduced table or figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []int
	Series []Series
	Notes  []string
}

// Format renders the result as an aligned text table, one row per X
// value and one column per series — the same rows/lines the paper
// plots. Each cell prints the median first (the statistic compare
// actually tests) and then mean (stddev), so the table and the gate
// read the same number.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "%s (y = %s, median then mean (stddev) over runs)\n", r.XLabel, r.YLabel)

	w := 28
	fmt.Fprintf(&b, "%-8s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%*s", w, s.Label)
	}
	b.WriteByte('\n')
	for i, x := range r.X {
		fmt.Fprintf(&b, "%-8d", x)
		for _, s := range r.Series {
			if i < len(s.Samples) {
				sm := s.Samples[i]
				fmt.Fprintf(&b, "%*s", w,
					fmt.Sprintf("%.2f  %s", sm.Median, sm.String()))
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r *Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.XLabel)
	for _, s := range r.Series {
		label := strings.ReplaceAll(s.Label, ",", ";")
		fmt.Fprintf(&b, ",%s mean,%s stddev,%s median", label, label, label)
	}
	b.WriteByte('\n')
	for i, x := range r.X {
		fmt.Fprintf(&b, "%d", x)
		for _, s := range r.Series {
			if i < len(s.Samples) {
				sm := s.Samples[i]
				fmt.Fprintf(&b, ",%.4f,%.4f,%.4f", sm.Mean, sm.StdDev, sm.Median)
			} else {
				fmt.Fprintf(&b, ",,,")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesByLabel finds a series by its label.
func (r *Result) SeriesByLabel(label string) (*Series, bool) {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i], true
		}
	}
	return nil, false
}

// Experiment is a named, runnable reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) (*Result, error)
}

// Experiments returns the registry of all reproductions, in paper
// order followed by ablations.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "The ZCAV effect on local drives", Fig1},
		{"fig2", "Tagged queues and ZCAV - local SCSI drive", Fig2},
		{"fig3", "Scheduler fairness: time to complete k of 8 processes", Fig3},
		{"fig4", "NFS over UDP throughput", Fig4},
		{"fig5", "NFS over TCP throughput", Fig5},
		{"fig6", "Read-ahead heuristics, idle vs busy client (ide1/UDP)", Fig6},
		{"fig7", "SlowDown and the new nfsheur table (ide1/UDP, busy client)", Fig7},
		{"fig8", "Stride reader throughput: cursor vs default", Fig8},
		{"table1", "Stride reader throughput table (mean/stddev)", Table1},
		{"ablate-aging", "Ablation: file-system aging vs heuristic gains", AblationAging},
		{"ablate-cursors", "Ablation: cursors per file vs stride throughput", AblationCursors},
		{"ablate-nfsheur", "Ablation: nfsheur table size vs concurrent readers", AblationNfsheur},
		{"ablate-window", "Ablation: server read-ahead window size", AblationWindow},
		{"live-scale", "Live server saturation: nfsheur sharding vs concurrent clients", LiveScale},
		{"alloc-profile", "Allocator traffic per live RPC: allocs/op and B/op by transfer size", AllocProfile},
		{"trace-replay", "Trace capture & replay: achieved load vs replay schedule", TraceReplay},
		{"write-path", "Asynchronous write pipeline: gather window vs synchronous writes", WritePath},
		{"zcav-live", "Live ZCAV trap: zone placement x cache size over real RPC", ZCAVLive},
		{"metadata-path", "Metadata path: create/stat/rename/readdir over live TCP", MetadataPath},
		{"fault-path", "Fault-tolerant RPC path: loss x transport x DRC over live sockets", FaultPath},
		{"cluster-scale", "Scale-out: sharded nfsd cluster vs amplified open-loop replay", ClusterScale},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
