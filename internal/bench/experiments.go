package bench

import (
	"fmt"
	"sort"
	"time"

	"nfstricks/internal/nfsclient"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/readahead"
	"nfstricks/internal/stats"
	"nfstricks/internal/testbed"
	"nfstricks/internal/workload"
)

// cell identifies one testbed configuration to sweep.
type cell struct {
	label string
	opts  testbed.Options
}

// heuristicByName builds a fresh heuristic (cursor heuristics carry
// state and must not be shared between testbeds).
func heuristicByName(name string) readahead.Heuristic {
	switch name {
	case "always":
		return readahead.Always{}
	case "slowdown":
		return readahead.SlowDown{}
	case "cursor":
		return &readahead.CursorHeuristic{}
	default:
		return readahead.Default{}
	}
}

// runLocalCell measures local-read throughput for n concurrent readers,
// averaged over p.Runs fresh testbeds.
func runLocalCell(c cell, n int, p Params) (stats.Sample, error) {
	var xs []float64
	for run := 0; run < p.Runs; run++ {
		opts := c.opts
		opts.Seed = p.Seed + int64(run)
		tb, err := testbed.New(opts)
		if err != nil {
			return stats.Sample{}, err
		}
		if err := workload.CreateFileSet(tb.FS, p.Scale); err != nil {
			return stats.Sample{}, err
		}
		res, err := workload.RunLocalReaders(tb, workload.FilesFor(n))
		tb.K.Shutdown()
		if err != nil {
			return stats.Sample{}, fmt.Errorf("%s n=%d: %w", c.label, n, err)
		}
		xs = append(xs, res.ThroughputMBps())
	}
	return stats.Summarize(xs), nil
}

// runNFSCell measures NFS throughput for n concurrent readers. The
// server heuristic is instantiated per run from heuristicName.
func runNFSCell(c cell, heuristicName string, n int, p Params) (stats.Sample, error) {
	var xs []float64
	for run := 0; run < p.Runs; run++ {
		opts := c.opts
		opts.Seed = p.Seed + int64(run)
		opts.Server.Heuristic = heuristicByName(heuristicName)
		tb, err := testbed.New(opts)
		if err != nil {
			return stats.Sample{}, err
		}
		if err := workload.CreateFileSet(tb.FS, p.Scale); err != nil {
			return stats.Sample{}, err
		}
		if err := tb.Start(); err != nil {
			return stats.Sample{}, err
		}
		res, err := workload.RunNFSReaders(tb, workload.FilesFor(n))
		tb.K.Shutdown()
		if err != nil {
			return stats.Sample{}, fmt.Errorf("%s n=%d: %w", c.label, n, err)
		}
		xs = append(xs, res.ThroughputMBps())
	}
	return stats.Summarize(xs), nil
}

// sweepLocal runs a local-read reader-count sweep for several cells.
func sweepLocal(id, title string, cells []cell, p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: id, Title: title,
		XLabel: "readers", YLabel: "throughput (MB/s)",
		X: workload.ReaderCounts,
	}
	for _, c := range cells {
		s := Series{Label: c.label}
		for _, n := range workload.ReaderCounts {
			sample, err := runLocalCell(c, n, p)
			if err != nil {
				return nil, err
			}
			s.Samples = append(s.Samples, sample)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// sweepNFS runs an NFS reader-count sweep for several cells.
func sweepNFS(id, title string, cells []cell, heuristicName string, p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: id, Title: title,
		XLabel: "readers", YLabel: "throughput (MB/s)",
		X: workload.ReaderCounts,
	}
	for _, c := range cells {
		s := Series{Label: c.label}
		for _, n := range workload.ReaderCounts {
			sample, err := runNFSCell(c, heuristicName, n, p)
			if err != nil {
				return nil, err
			}
			s.Samples = append(s.Samples, sample)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Fig1 reproduces Figure 1: the ZCAV effect. The same local benchmark
// on the outermost (1) and innermost (4) quarter partitions of both
// drives; outer partitions transfer faster.
func Fig1(p Params) (*Result, error) {
	return sweepLocal("fig1", "The ZCAV Effect on Local Drives", []cell{
		{"ide1", testbed.Options{Disk: testbed.IDE, Partition: 1}},
		{"ide4", testbed.Options{Disk: testbed.IDE, Partition: 4}},
		{"scsi1", testbed.Options{Disk: testbed.SCSI, Partition: 1}},
		{"scsi4", testbed.Options{Disk: testbed.SCSI, Partition: 4}},
	}, p)
}

// Fig2 reproduces Figure 2: tagged command queues on the SCSI drive.
// Disabling TCQ hands scheduling back to the host elevator, which
// serves long sequential runs and wins for this workload.
func Fig2(p Params) (*Result, error) {
	return sweepLocal("fig2", "Tagged Queues and ZCAV - Local SCSI Drive", []cell{
		{"scsi1/no tags", testbed.Options{Disk: testbed.SCSI, Partition: 1, DisableTCQ: true}},
		{"scsi4/no tags", testbed.Options{Disk: testbed.SCSI, Partition: 4, DisableTCQ: true}},
		{"scsi1/tags", testbed.Options{Disk: testbed.SCSI, Partition: 1}},
		{"scsi4/tags", testbed.Options{Disk: testbed.SCSI, Partition: 4}},
	}, p)
}

// Fig3 reproduces Figure 3: the completion-time distribution of eight
// concurrent readers of 32 MB files under the Elevator and N-CSCAN
// schedulers, with and without tagged queues. X is "processes
// completed" (1..8); Y is the mean time by which k processes finished.
func Fig3(p Params) (*Result, error) {
	p.fill()
	cells := []cell{
		{"scsi1/elev/no tags", testbed.Options{Disk: testbed.SCSI, Scheduler: "elevator", DisableTCQ: true}},
		{"ide1/elev", testbed.Options{Disk: testbed.IDE, Scheduler: "elevator"}},
		{"scsi1/elev/tags", testbed.Options{Disk: testbed.SCSI, Scheduler: "elevator"}},
		{"scsi1/ncscan/tags", testbed.Options{Disk: testbed.SCSI, Scheduler: "ncscan"}},
		{"scsi1/ncscan/no tags", testbed.Options{Disk: testbed.SCSI, Scheduler: "ncscan", DisableTCQ: true}},
		{"ide1/ncscan", testbed.Options{Disk: testbed.IDE, Scheduler: "ncscan"}},
	}
	const readers = 8
	r := &Result{
		ID: "fig3", Title: "Scheduler fairness: 8 concurrent 32 MB readers",
		XLabel: "completed", YLabel: "time to completion (s)",
	}
	for k := 1; k <= readers; k++ {
		r.X = append(r.X, k)
	}
	for _, c := range cells {
		perK := make([][]float64, readers)
		for run := 0; run < p.Runs; run++ {
			opts := c.opts
			opts.Seed = p.Seed + int64(run)
			tb, err := testbed.New(opts)
			if err != nil {
				return nil, err
			}
			if err := workload.CreateFileSet(tb.FS, p.Scale); err != nil {
				return nil, err
			}
			res, err := workload.RunLocalReaders(tb, workload.FilesFor(readers))
			tb.K.Shutdown()
			if err != nil {
				return nil, err
			}
			times := append([]float64(nil), durationsToSeconds(res.PerReader)...)
			sort.Float64s(times)
			for k := 0; k < readers; k++ {
				perK[k] = append(perK[k], times[k])
			}
		}
		s := Series{Label: c.label, Better: BetterLower} // completion time
		for k := 0; k < readers; k++ {
			s.Samples = append(s.Samples, stats.Summarize(perK[k]))
		}
		r.Series = append(r.Series, s)
	}
	r.Notes = append(r.Notes,
		"elevator: staircase distribution (last reader ~6-7x the first); ncscan: flat but slow")
	return r, nil
}

func durationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Fig4 reproduces Figure 4: NFS over UDP with the stock server (default
// heuristic, FreeBSD 4.x nfsheur table), on all four partitions, plus
// the no-tagged-queue SCSI variant.
func Fig4(p Params) (*Result, error) {
	r, err := sweepNFS("fig4", "NFS over UDP", []cell{
		{"ide1", testbed.Options{Disk: testbed.IDE, Partition: 1}},
		{"ide4", testbed.Options{Disk: testbed.IDE, Partition: 4}},
		{"scsi1", testbed.Options{Disk: testbed.SCSI, Partition: 1}},
		{"scsi4", testbed.Options{Disk: testbed.SCSI, Partition: 4}},
		{"scsi1/no tags", testbed.Options{Disk: testbed.SCSI, Partition: 1, DisableTCQ: true}},
	}, "default", p)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, "ide1/no tags equals ide1: the IDE drive has no tagged queue")
	return r, nil
}

// Fig5 reproduces Figure 5: the same sweep over TCP. Throughput is
// flatter across reader counts but starts lower than UDP.
func Fig5(p Params) (*Result, error) {
	tcp := nfsclient.Config{UseTCP: true}
	return sweepNFS("fig5", "NFS over TCP", []cell{
		{"ide1", testbed.Options{Disk: testbed.IDE, Partition: 1, Client: tcp}},
		{"ide4", testbed.Options{Disk: testbed.IDE, Partition: 4, Client: tcp}},
		{"scsi1", testbed.Options{Disk: testbed.SCSI, Partition: 1, Client: tcp}},
		{"scsi4", testbed.Options{Disk: testbed.SCSI, Partition: 4, Client: tcp}},
		{"scsi1/no tags", testbed.Options{Disk: testbed.SCSI, Partition: 1, Client: tcp, DisableTCQ: true}},
	}, "default", p)
}

// Fig6 reproduces Figure 6: the potential of read-ahead. Default vs
// hard-wired Always Read-ahead on ide1 over UDP, with an idle client
// and with a client running four infinite-loop processes.
func Fig6(p Params) (*Result, error) {
	p.fill()
	mk := func(busy int) testbed.Options {
		return testbed.Options{Disk: testbed.IDE, Partition: 1, BusyProcs: busy}
	}
	r := &Result{
		ID: "fig6", Title: "ide1 via NFS over UDP: idle vs busy client",
		XLabel: "readers", YLabel: "throughput (MB/s)",
		X: workload.ReaderCounts,
	}
	for _, cfg := range []struct {
		label     string
		heuristic string
		busy      int
	}{
		{"idle/always", "always", 0},
		{"idle/default", "default", 0},
		{"busy/always", "always", 4},
		{"busy/default", "default", 4},
	} {
		s := Series{Label: cfg.label}
		for _, n := range workload.ReaderCounts {
			sample, err := runNFSCell(cell{cfg.label, mk(cfg.busy)}, cfg.heuristic, n, p)
			if err != nil {
				return nil, err
			}
			s.Samples = append(s.Samples, sample)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Fig7 reproduces Figure 7: SlowDown and the enlarged nfsheur table on
// the busy client. With the new table, both SlowDown and the default
// heuristic match Always Read-ahead; with the 4.x table, state is
// ejected and read-ahead collapses as readers grow.
func Fig7(p Params) (*Result, error) {
	p.fill()
	mk := func(table nfsheur.Params) testbed.Options {
		return testbed.Options{
			Disk: testbed.IDE, Partition: 1, BusyProcs: 4,
			Server: nfsserver.Config{Table: table},
		}
	}
	r := &Result{
		ID: "fig7", Title: "ide1 via NFS over UDP, busy client: heuristics and nfsheur",
		XLabel: "readers", YLabel: "throughput (MB/s)",
		X: workload.ReaderCounts,
	}
	for _, cfg := range []struct {
		label     string
		heuristic string
		table     nfsheur.Params
	}{
		{"always", "always", nfsheur.ImprovedParams()},
		{"slowdown/new nfsheur", "slowdown", nfsheur.ImprovedParams()},
		{"default/new nfsheur", "default", nfsheur.ImprovedParams()},
		{"default/default nfsheur", "default", nfsheur.DefaultParams()},
	} {
		s := Series{Label: cfg.label}
		for _, n := range workload.ReaderCounts {
			sample, err := runNFSCell(cell{cfg.label, mk(cfg.table)}, cfg.heuristic, n, p)
			if err != nil {
				return nil, err
			}
			s.Samples = append(s.Samples, sample)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// strideThroughput measures one Figure 8 / Table 1 cell.
func strideThroughput(disk testbed.DiskKind, heuristicName string, s int, p Params) (stats.Sample, error) {
	var xs []float64
	size := int64(256) * workload.MB / int64(p.Scale)
	for run := 0; run < p.Runs; run++ {
		tb, err := testbed.New(testbed.Options{
			Seed: p.Seed + int64(run), Disk: disk, Partition: 1,
			Server: nfsserver.Config{
				Heuristic: heuristicByName(heuristicName),
				Table:     nfsheur.ImprovedParams(),
			},
		})
		if err != nil {
			return stats.Sample{}, err
		}
		if _, err := tb.FS.Create("stride", size); err != nil {
			return stats.Sample{}, err
		}
		if err := tb.Start(); err != nil {
			return stats.Sample{}, err
		}
		res, err := workload.RunNFSStrideReader(tb, "stride", s)
		tb.K.Shutdown()
		if err != nil {
			return stats.Sample{}, err
		}
		xs = append(xs, res.ThroughputMBps())
	}
	return stats.Summarize(xs), nil
}

// strides are the Figure 8 / Table 1 sub-stream counts.
var strides = []int{2, 4, 8}

// Fig8 reproduces Figure 8: throughput reading a 256 MB file in 2, 4,
// and 8-stride patterns with the cursor heuristic vs the default.
func Fig8(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "fig8", Title: "Throughput for Stride Readers using UDP",
		XLabel: "strides", YLabel: "throughput (MB/s)",
		X: strides,
	}
	for _, cfg := range []struct{ label, disk, heuristic string }{
		{"scsi1/cursor", "scsi", "cursor"},
		{"ide1/cursor", "ide", "cursor"},
		{"scsi1/default", "scsi", "default"},
		{"ide1/default", "ide", "default"},
	} {
		s := Series{Label: cfg.label}
		for _, st := range strides {
			sample, err := strideThroughput(testbed.DiskKind(cfg.disk), cfg.heuristic, st, p)
			if err != nil {
				return nil, err
			}
			s.Samples = append(s.Samples, sample)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Table1 reproduces Table 1: the same cells as Figure 8 presented as
// mean (stddev) throughput, ten reads of a single 256 MB file.
func Table1(p Params) (*Result, error) {
	r, err := Fig8(p)
	if err != nil {
		return nil, err
	}
	r.ID = "table1"
	r.Title = "Mean throughput (MB/s) of stride reads of a 256 MB file"
	r.Notes = append(r.Notes,
		"paper (ide1): default 7.66/7.83/5.26, cursor 11.49/14.15/12.66",
		"paper (scsi1): default 9.49/8.52/8.21, cursor 15.39/15.38/14.12")
	return r, nil
}
