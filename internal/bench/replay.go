package bench

import (
	"bytes"
	"fmt"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/replay"
	"nfstricks/internal/stats"
	"nfstricks/internal/tracefile"
)

// traceReplayStreams is how many concurrent client streams the captured
// workload runs.
const traceReplayStreams = 4

// traceReplayGap is the think time between a stream's requests in the
// captured workload — the inter-arrival structure faithful replay must
// reproduce.
const traceReplayGap = 2 * time.Millisecond

// traceReplayBytes is how much each stream reads at Scale 1.
const traceReplayBytes = 2 << 20

// traceReplaySpeeds are the replayed schedules: ×1 is
// timestamp-faithful, larger factors compress the captured gaps, and 0
// means as fast as possible.
var traceReplaySpeeds = []int{1, 4, 16, 0}

// traceReplayEnv builds the identical file store the capture ran
// against, so captured file handles replay under the identity mapping.
func traceReplayEnv(perStream int) (*memfs.FS, []nfsproto.FH) {
	fs := memfs.NewFS()
	payload := make([]byte, perStream)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	fhs := make([]nfsproto.FH, traceReplayStreams)
	for i := range fhs {
		fhs[i], _ = fs.Create(memfs.RootFH, fmt.Sprintf("s%d", i), payload)
	}
	return fs, fhs
}

// captureWorkload serves the store with capture enabled and drives the
// synthetic workload: traceReplayStreams concurrent TCP clients, each
// reading its file sequentially in 8 KB requests with traceReplayGap of
// think time. It returns the captured records and the workload's
// wall-clock ops/s.
func captureWorkload(perStream int) ([]tracefile.Record, float64, error) {
	fs, fhs := traceReplayEnv(perStream)
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf, time.Now())
	if err != nil {
		return nil, 0, err
	}
	capt := nfstrace.NewCapture(w)
	srv, err := memfs.NewServerTap("127.0.0.1:0", memfs.NewService(fs, nil, nil), capt.Tap)
	if err != nil {
		return nil, 0, err
	}

	errs := make(chan error, traceReplayStreams)
	t0 := time.Now()
	for i := 0; i < traceReplayStreams; i++ {
		go func(fh nfsproto.FH) {
			c, err := memfs.DialClient("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for off := uint64(0); off < uint64(perStream); off += 8192 {
				if _, _, err := c.Read(fh, off, 8192); err != nil {
					errs <- err
					return
				}
				time.Sleep(traceReplayGap)
			}
			errs <- nil
		}(fhs[i])
	}
	var firstErr error
	for i := 0; i < traceReplayStreams; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	elapsed := time.Since(t0)
	srv.Close()
	if firstErr != nil {
		capt.Close()
		return nil, 0, firstErr
	}
	if err := capt.Err(); err != nil {
		return nil, 0, err
	}
	if err := capt.Close(); err != nil {
		return nil, 0, err
	}
	_, recs, err := tracefile.ReadAll(&buf)
	if err != nil {
		return nil, 0, err
	}
	return recs, float64(len(recs)) / elapsed.Seconds(), nil
}

// traceSpan is the arrival span of a capture (first to last request).
func traceSpan(recs []tracefile.Record) time.Duration {
	if len(recs) == 0 {
		return 0
	}
	min, max := recs[0].When, recs[0].When
	for _, r := range recs {
		if r.When < min {
			min = r.When
		}
		if r.When > max {
			max = r.When
		}
	}
	return max - min
}

// replayOptions maps a speed cell to engine options: 0 = as fast as
// possible, 1 = timestamp-faithful, else scaled ×speed.
func replayOptions(addr string, speed int) replay.Options {
	opts := replay.Options{Network: "tcp", Addr: addr}
	switch speed {
	case 0:
		opts.Timing = replay.AsFast
	case 1:
		opts.Timing = replay.Faithful
	default:
		opts.Timing = replay.Scaled
		opts.Speed = float64(speed)
	}
	return opts
}

// TraceReplay is the live capture→replay experiment: it records a
// real multi-stream workload over loopback TCP into the .nft trace
// format, then replays the trace against a fresh live server at several
// schedules — timestamp-faithful, speed-scaled and unthrottled —
// reporting achieved ops/s and reply-latency percentiles per schedule,
// plus how closely each schedule reproduced the captured arrival span.
// It is the anti-synthetic-benchmark instrument the paper asks for:
// the workload driving the server is a recorded request stream, not a
// loop the harness invented, and the trace file is a reusable artifact
// (`cmd/nfstrace` analyzes and replays the same format).
func TraceReplay(p Params) (*Result, error) {
	p.fill()
	perStream := traceReplayBytes / p.Scale
	if perStream < 64*1024 {
		perStream = 64 * 1024
	}
	r := &Result{
		ID: "trace-replay", Title: "Trace capture & replay: achieved load vs replay schedule",
		XLabel: "speed", YLabel: "ops/s, latency (µs), span error (%)",
		X: traceReplaySpeeds,
	}

	opsSeries := Series{Label: "achieved ops/s", Better: BetterHigher}
	p50Series := Series{Label: "p50 latency (µs)", Better: BetterLower}
	p99Series := Series{Label: "p99 latency (µs)", Better: BetterLower}
	spanSeries := Series{Label: "span error (%)", Better: BetterLower}

	var captureOps []float64
	var captureReorder []float64
	cells := make(map[int][]*replay.Stats)
	spans := make(map[int][]float64)
	for run := 0; run < p.Runs; run++ {
		recs, opsPerSec, err := captureWorkload(perStream)
		if err != nil {
			return nil, fmt.Errorf("trace-replay capture: %w", err)
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("trace-replay: empty capture")
		}
		captureOps = append(captureOps, opsPerSec)
		a := nfstrace.Analyze(nfstrace.FromTracefile(recs), nfsproto.ProcRead)
		captureReorder = append(captureReorder, 100*a.ReorderFrac)
		span := traceSpan(recs)

		for _, speed := range traceReplaySpeeds {
			// A fresh server over an identically built store: captured
			// handles replay under the identity mapping.
			fs, _ := traceReplayEnv(perStream)
			srv, err := memfs.NewServer("127.0.0.1:0", memfs.NewService(fs, nil, nil))
			if err != nil {
				return nil, fmt.Errorf("trace-replay: %w", err)
			}
			st, err := replay.Run(recs, replayOptions(srv.Addr(), speed))
			srv.Close()
			if err != nil {
				return nil, fmt.Errorf("trace-replay speed=%d: %w", speed, err)
			}
			if st.Errors > 0 || st.NFSErrors > 0 {
				return nil, fmt.Errorf("trace-replay speed=%d: %d transport / %d NFS errors", speed, st.Errors, st.NFSErrors)
			}
			cells[speed] = append(cells[speed], st)
			if speed > 0 {
				want := time.Duration(float64(span) / float64(speed))
				errPct := 100 * (st.IssueSpan - want).Seconds() / want.Seconds()
				if errPct < 0 {
					errPct = -errPct
				}
				spans[speed] = append(spans[speed], errPct)
			} else {
				spans[speed] = append(spans[speed], 0)
			}
		}
	}

	for _, speed := range traceReplaySpeeds {
		var ops, p50, p99 []float64
		for _, st := range cells[speed] {
			ops = append(ops, st.OpsPerSec)
			p50 = append(p50, float64(st.P50.Microseconds()))
			p99 = append(p99, float64(st.P99.Microseconds()))
		}
		opsSeries.Samples = append(opsSeries.Samples, stats.Summarize(ops))
		p50Series.Samples = append(p50Series.Samples, stats.Summarize(p50))
		p99Series.Samples = append(p99Series.Samples, stats.Summarize(p99))
		spanSeries.Samples = append(spanSeries.Samples, stats.Summarize(spans[speed]))
	}
	r.Series = append(r.Series, opsSeries, p50Series, p99Series, spanSeries)

	capSum := stats.Summarize(captureOps)
	r.Notes = append(r.Notes,
		fmt.Sprintf("captured workload: %d streams, %.0f ops/s mean over %d runs, READ reorder %.2f%%",
			traceReplayStreams, capSum.Mean, capSum.N, stats.Summarize(captureReorder).Mean),
		"speed 1 = timestamp-faithful (span error is the timing-fidelity check), 0 = as fast as possible",
		"replays run closed-loop over TCP against a fresh server built identically to the captured one")
	return r, nil
}
