package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/stats"
	"nfstricks/internal/wgather"
)

// writePathWindows is the gather-window sweep, in milliseconds (the X
// axis). 0 is the degenerate write-through configuration — the
// synchronous behaviour the server had before the gathering engine.
var writePathWindows = []int{0, 1, 4, 16}

// writePathSinks is the sink-speed sweep: the fixed per-flush cost of
// stable storage. Gathering's win grows with the cost it amortizes.
var writePathSinks = []struct {
	label   string
	latency time.Duration
}{
	{"fast", 100 * time.Microsecond},
	{"slow", 600 * time.Microsecond},
}

// writePathClients is how many concurrent writers drive each cell, one
// file each.
const writePathClients = 2

// writePathBytes is how much each client writes per run at Scale 1.
const writePathBytes = 1 << 20

// writePathChunk is the per-WRITE payload (the paper's 8 KB request
// size).
const writePathChunk = 8192

// writePathCommitEvery is how many unstable writes ride between
// COMMITs in the gathered workload.
const writePathCommitEvery = 32

// writeBehindWindow bounds the client's in-flight unstable writes.
const writeBehindWindow = 8

// writePathPattern fills buf with the deterministic payload for offset
// off of client file i.
func writePathPattern(buf []byte, i int, off uint64) {
	for j := range buf {
		buf[j] = byte((int(off) + j*7 + i) * 31)
	}
}

// writePathEnv is one cell's server: a fresh store with one file per
// client, served through a gathering engine with the given window and
// a throttled sink whose inner MemSink retains the stable image for
// integrity checks.
type writePathEnv struct {
	fs   *memfs.FS
	svc  *memfs.Service
	mem  *wgather.MemSink
	addr string
	fhs  []nfsproto.FH
	stop func()
}

func newWritePathEnv(window time.Duration, sinkLatency time.Duration, perClient int) (*writePathEnv, error) {
	fs := memfs.NewFS()
	fhs := make([]nfsproto.FH, writePathClients)
	for i := range fhs {
		// Pre-size the files so the sweep measures the write pipeline,
		// not allocator regrowth.
		fhs[i], _ = fs.Create(memfs.RootFH, fmt.Sprintf("w%d", i), make([]byte, perClient))
	}
	mem := wgather.NewMemSink()
	svc := memfs.NewServiceGather(fs, nil, nil, wgather.Config{
		Window: window,
		Sink:   &wgather.ThrottledSink{Inner: mem, Latency: sinkLatency},
	})
	srv, err := memfs.NewServer("127.0.0.1:0", svc)
	if err != nil {
		svc.Close()
		return nil, err
	}
	return &writePathEnv{fs: fs, svc: svc, mem: mem, addr: srv.Addr(), fhs: fhs,
		stop: func() { srv.Close(); svc.Close() }}, nil
}

// latPct returns the p-th percentile of ds (sorted in place).
func latPct(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[int(p*float64(len(ds)-1))]
}

// runFileSync drives the synchronous baseline: every client writes its
// file sequentially with FILE_SYNC, paying the sink's flush cost once
// per RPC. Returns achieved aggregate ops/s and per-WRITE reply
// latencies.
func runFileSync(env *writePathEnv, perClient int) (float64, []time.Duration, error) {
	type res struct {
		lats []time.Duration
		err  error
	}
	results := make(chan res, writePathClients)
	t0 := time.Now()
	for i := 0; i < writePathClients; i++ {
		go func(i int) {
			var r res
			r.err = func() error {
				c, err := memfs.DialClient("tcp", env.addr)
				if err != nil {
					return err
				}
				defer c.Close()
				buf := make([]byte, writePathChunk)
				for off := uint64(0); off < uint64(perClient); off += writePathChunk {
					writePathPattern(buf, i, off)
					issued := time.Now()
					if err := c.Write(env.fhs[i], off, buf); err != nil {
						return err
					}
					r.lats = append(r.lats, time.Since(issued))
				}
				return nil
			}()
			results <- r
		}(i)
	}
	var lats []time.Duration
	var firstErr error
	for i := 0; i < writePathClients; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		lats = append(lats, r.lats...)
	}
	elapsed := time.Since(t0)
	if firstErr != nil {
		return 0, nil, firstErr
	}
	ops := writePathClients * (perClient / writePathChunk)
	return float64(ops) / elapsed.Seconds(), lats, nil
}

// runUnstable drives the asynchronous pipeline: every client streams
// UNSTABLE writes through a write-behind window and COMMITs every
// writePathCommitEvery writes — the biod shape. Returns aggregate
// ops/s (WRITEs plus COMMITs) and per-WRITE issue-to-issue latencies
// (what the pipelined client observes per request slot).
func runUnstable(env *writePathEnv, perClient int) (float64, []time.Duration, error) {
	type res struct {
		lats []time.Duration
		err  error
	}
	results := make(chan res, writePathClients)
	t0 := time.Now()
	for i := 0; i < writePathClients; i++ {
		go func(i int) {
			var r res
			r.err = func() error {
				c, err := memfs.DialClient("tcp", env.addr)
				if err != nil {
					return err
				}
				defer c.Close()
				wb := c.NewWriteBehind(env.fhs[i], writeBehindWindow)
				buf := make([]byte, writePathChunk)
				n := 0
				for off := uint64(0); off < uint64(perClient); off += writePathChunk {
					writePathPattern(buf, i, off)
					issued := time.Now()
					if err := wb.Write(off, buf); err != nil {
						return err
					}
					r.lats = append(r.lats, time.Since(issued))
					if n++; n%writePathCommitEvery == 0 {
						if _, err := wb.Commit(); err != nil {
							return err
						}
					}
				}
				_, err = wb.Commit()
				return err
			}()
			results <- r
		}(i)
	}
	var lats []time.Duration
	var firstErr error
	for i := 0; i < writePathClients; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		lats = append(lats, r.lats...)
	}
	elapsed := time.Since(t0)
	if firstErr != nil {
		return 0, nil, firstErr
	}
	writes := perClient / writePathChunk
	commits := writes/writePathCommitEvery + 1
	return float64(writePathClients*(writes+commits)) / elapsed.Seconds(), lats, nil
}

// runHotspot rewrites one hot region UNSTABLE many times before a
// single COMMIT — the coalescing showcase: bytes gathered greatly
// exceed bytes flushed because overlapping dirty ranges absorb each
// other inside the window. Returns the flushed/gathered percentage
// (lower = more coalescing).
func runHotspot(env *writePathEnv) (float64, error) {
	c, err := memfs.DialClient("tcp", env.addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	before := env.svc.WriteStats()
	const passes = 8
	const region = 16 * writePathChunk
	buf := make([]byte, writePathChunk)
	for p := 0; p < passes; p++ {
		for off := uint64(0); off < region; off += writePathChunk {
			writePathPattern(buf, 0, off)
			if _, err := c.WriteUnstable(env.fhs[0], off, buf); err != nil {
				return 0, err
			}
		}
	}
	if _, err := c.Commit(env.fhs[0], 0, 0); err != nil {
		return 0, err
	}
	after := env.svc.WriteStats()
	gathered := after.GatheredBytes - before.GatheredBytes
	flushed := after.FlushedBytes - before.FlushedBytes
	if gathered == 0 {
		return 100, nil
	}
	return 100 * float64(flushed) / float64(gathered), nil
}

// verifyStable checks the sink's stable image of every client file
// against the expected pattern — the integrity floor under every cell.
func verifyStable(env *writePathEnv, perClient int) error {
	want := make([]byte, perClient)
	for i := 0; i < writePathClients; i++ {
		for off := 0; off < perClient; off += writePathChunk {
			writePathPattern(want[off:off+writePathChunk], i, uint64(off))
		}
		got := env.mem.Bytes(uint64(env.fhs[i]))
		if len(got) < perClient {
			return fmt.Errorf("write-path: stable image of file %d is %d bytes, want %d", i, len(got), perClient)
		}
		if !bytes.Equal(got[:perClient], want) {
			return fmt.Errorf("write-path: stable image of file %d differs from written data", i)
		}
	}
	return nil
}

// checkWriteThroughEquivalence asserts the acceptance property of the
// zero-width window: on the in-memory sink, UNSTABLE writes behave
// bit-for-bit like the old synchronous server — every write reaches
// the sink before its reply (flushes == writes), is advertised
// FILE_SYNC, and the stable image equals the written bytes exactly.
func checkWriteThroughEquivalence() error {
	fs := memfs.NewFS()
	fh, _ := fs.Create(memfs.RootFH, "sync", nil)
	mem := wgather.NewMemSink()
	svc := memfs.NewServiceGather(fs, nil, nil, wgather.Config{Window: 0, Sink: mem})
	srv, err := memfs.NewServer("127.0.0.1:0", svc)
	if err != nil {
		svc.Close()
		return err
	}
	defer func() { srv.Close(); svc.Close() }()
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		return err
	}
	defer c.Close()

	const writes = 64
	want := make([]byte, writes*writePathChunk)
	buf := make([]byte, writePathChunk)
	for i := 0; i < writes; i++ {
		off := uint64(i * writePathChunk)
		writePathPattern(buf, 0, off)
		copy(want[off:], buf)
		res, err := c.WriteStable(fh, off, buf, nfsproto.WriteUnstable)
		if err != nil {
			return err
		}
		if res.Committed != nfsproto.WriteFileSync {
			return fmt.Errorf("write-path: zero window advertised stability %d, want FILE_SYNC", res.Committed)
		}
	}
	st := svc.WriteStats()
	if st.Flushes != writes {
		return fmt.Errorf("write-path: zero window made %d flushes for %d writes, want one per write", st.Flushes, writes)
	}
	if got := mem.Bytes(uint64(fh)); !bytes.Equal(got, want) {
		return fmt.Errorf("write-path: zero-window stable image differs from written data")
	}
	return nil
}

// WritePath is the asynchronous-write-pipeline experiment: it sweeps
// the server's gather window × the stable-storage sink's speed and
// compares the synchronous stability mix (FILE_SYNC, one sink flush
// per RPC) against the asynchronous one (UNSTABLE writes behind a
// biod-style write-behind window, COMMIT every 32 writes), reporting
// achieved ops/s per cell, per-WRITE p50/p99 reply latency on the slow
// sink, how many sink flushes 1000 client writes cost, and how much a
// hot-spot rewrite workload's flushed bytes shrink versus bytes
// gathered (coalescing). Every cell is integrity-checked against the
// sink's stable image, and the zero-width window is asserted to
// reproduce the old synchronous behaviour bit-for-bit on the in-memory
// sink.
func WritePath(p Params) (*Result, error) {
	p.fill()
	perClient := writePathBytes / p.Scale
	if perClient < 8*writePathChunk {
		perClient = 8 * writePathChunk
	}
	// Round to whole chunks.
	perClient -= perClient % writePathChunk

	if err := checkWriteThroughEquivalence(); err != nil {
		return nil, err
	}

	r := &Result{
		ID: "write-path", Title: "Asynchronous write pipeline: gather window x sink speed vs synchronous writes",
		XLabel: "window (ms)", YLabel: "ops/s, latency (µs), flushes per 1k writes, flushed/gathered (%)",
		X: writePathWindows,
	}
	series := map[string]*Series{}
	order := []string{}
	addSeries := func(label string, better string) *Series {
		s := &Series{Label: label, Better: better}
		series[label] = s
		order = append(order, label)
		return s
	}
	for _, sk := range writePathSinks {
		addSeries("filesync ops/s ("+sk.label+" sink)", BetterHigher)
		addSeries("unstable+commit ops/s ("+sk.label+" sink)", BetterHigher)
	}
	addSeries("filesync write p99 (µs, slow sink)", BetterLower)
	addSeries("unstable write p50 (µs, slow sink)", BetterLower)
	addSeries("unstable write p99 (µs, slow sink)", BetterLower)
	addSeries("sink flushes per 1k writes", BetterLower)
	addSeries("hotspot flushed/gathered (%)", BetterLower)

	for _, winMS := range writePathWindows {
		window := time.Duration(winMS) * time.Millisecond
		acc := map[string][]float64{}
		for run := 0; run < p.Runs; run++ {
			for _, sk := range writePathSinks {
				// Synchronous baseline.
				env, err := newWritePathEnv(window, sk.latency, perClient)
				if err != nil {
					return nil, fmt.Errorf("write-path: %w", err)
				}
				ops, lats, err := runFileSync(env, perClient)
				if err == nil {
					err = verifyStable(env, perClient)
				}
				env.stop()
				if err != nil {
					return nil, fmt.Errorf("write-path filesync window=%dms sink=%s: %w", winMS, sk.label, err)
				}
				acc["filesync ops/s ("+sk.label+" sink)"] = append(acc["filesync ops/s ("+sk.label+" sink)"], ops)
				if sk.label == "slow" {
					acc["filesync write p99 (µs, slow sink)"] = append(acc["filesync write p99 (µs, slow sink)"],
						float64(latPct(lats, 0.99).Microseconds()))
				}

				// Asynchronous pipeline on a fresh server.
				env, err = newWritePathEnv(window, sk.latency, perClient)
				if err != nil {
					return nil, fmt.Errorf("write-path: %w", err)
				}
				ops, lats, err = runUnstable(env, perClient)
				if err == nil {
					err = verifyStable(env, perClient)
				}
				if err == nil && sk.label == "slow" {
					st := env.svc.WriteStats()
					writes := st.WritesUnstable + st.WritesDataSync + st.WritesFileSync
					if writes > 0 {
						acc["sink flushes per 1k writes"] = append(acc["sink flushes per 1k writes"],
							1000*float64(st.Flushes)/float64(writes))
					}
					acc["unstable write p50 (µs, slow sink)"] = append(acc["unstable write p50 (µs, slow sink)"],
						float64(latPct(lats, 0.50).Microseconds()))
					acc["unstable write p99 (µs, slow sink)"] = append(acc["unstable write p99 (µs, slow sink)"],
						float64(latPct(lats, 0.99).Microseconds()))
					var pct float64
					pct, err = runHotspot(env)
					if err == nil {
						acc["hotspot flushed/gathered (%)"] = append(acc["hotspot flushed/gathered (%)"], pct)
					}
				}
				env.stop()
				if err != nil {
					return nil, fmt.Errorf("write-path unstable window=%dms sink=%s: %w", winMS, sk.label, err)
				}
				acc["unstable+commit ops/s ("+sk.label+" sink)"] = append(acc["unstable+commit ops/s ("+sk.label+" sink)"], ops)
			}
		}
		for _, label := range order {
			series[label].Samples = append(series[label].Samples, stats.Summarize(acc[label]))
		}
	}
	for _, label := range order {
		r.Series = append(r.Series, *series[label])
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d clients x %d KB in %d KB FILE_SYNC or UNSTABLE(+COMMIT every %d) writes over loopback TCP",
			writePathClients, perClient>>10, writePathChunk>>10, writePathCommitEvery),
		"sinks: throttled per-flush latency fast=100us slow=600us (MemSink inner); every cell integrity-checked against the stable image",
		"window 0 = write-through: verified bit-for-bit equal to the old synchronous server on the in-memory sink",
		"unstable write latency is the pipelined per-request slot time (write-behind window 8)",
	)
	return r, nil
}
