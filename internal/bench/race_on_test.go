//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this
// build; quantitative allocator bounds are meaningless under its
// shadow-memory overhead.
const raceEnabled = true
