package bench

import "fmt"

// Check is one shape assertion against a reproduced result: a claim the
// paper makes that must hold regardless of absolute calibration.
type Check struct {
	Claim string
	OK    bool
	Got   string
}

// Verify evaluates the paper's qualitative claims against a result.
// Unknown experiment IDs yield no checks.
func Verify(r *Result) []Check {
	switch r.ID {
	case "fig1":
		return verifyFig1(r)
	case "fig2":
		return verifyFig2(r)
	case "fig3":
		return verifyFig3(r)
	case "fig4":
		return verifyFig4(r)
	case "fig5":
		return verifyFig5(r)
	case "fig6":
		return verifyFig6(r)
	case "fig7":
		return verifyFig7(r)
	case "fig8", "table1":
		return verifyFig8(r)
	case "write-path":
		return verifyWritePath(r)
	case "zcav-live":
		return verifyZCAVLive(r)
	default:
		return nil
	}
}

// mean fetches a sample mean, tolerating missing series (reported as a
// failed check by callers via ok=false).
func mean(r *Result, label string, x int) (float64, bool) {
	s, ok := r.SeriesByLabel(label)
	if !ok || x >= len(s.Samples) {
		return 0, false
	}
	return s.Samples[x].Mean, true
}

func check(claim string, ok bool, format string, args ...any) Check {
	return Check{Claim: claim, OK: ok, Got: fmt.Sprintf(format, args...)}
}

func verifyFig1(r *Result) []Check {
	var out []Check
	for _, pair := range [][2]string{{"ide1", "ide4"}, {"scsi1", "scsi4"}} {
		allOuterFaster := true
		var o1, i1 float64
		for x := range r.X {
			outer, ok1 := mean(r, pair[0], x)
			inner, ok2 := mean(r, pair[1], x)
			if !ok1 || !ok2 || outer <= inner {
				allOuterFaster = false
			}
			if x == 0 {
				o1, i1 = outer, inner
			}
		}
		out = append(out, check(
			fmt.Sprintf("ZCAV: %s faster than %s at every reader count", pair[0], pair[1]),
			allOuterFaster, "1 reader: %.1f vs %.1f MB/s", o1, i1))
	}
	return out
}

func verifyFig2(r *Result) []Check {
	var out []Check
	tags8, ok1 := mean(r, "scsi1/tags", 3)
	noTags8, ok2 := mean(r, "scsi1/no tags", 3)
	out = append(out, check(
		"disabling tagged queues improves concurrent sequential reads substantially",
		ok1 && ok2 && noTags8 > 1.4*tags8,
		"8 readers: no-tags %.1f vs tags %.1f MB/s", noTags8, tags8))
	tags1, ok3 := mean(r, "scsi1/tags", 0)
	out = append(out, check(
		"tagged queues show a single-reader spike (no penalty at 1 reader)",
		ok1 && ok3 && tags1 > 1.5*tags8,
		"tags: 1 reader %.1f vs 8 readers %.1f MB/s", tags1, tags8))
	return out
}

func verifyFig3(r *Result) []Check {
	var out []Check
	eFirst, ok1 := mean(r, "ide1/elev", 0)
	eLast, ok2 := mean(r, "ide1/elev", 7)
	out = append(out, check(
		"elevator: staircase — the last process takes several times longer than the first",
		ok1 && ok2 && eLast > 3*eFirst,
		"first %.2fs, last %.2fs (%.1fx)", eFirst, eLast, eLast/eFirst))
	nFirst, ok3 := mean(r, "ide1/ncscan", 0)
	nLast, ok4 := mean(r, "ide1/ncscan", 7)
	out = append(out, check(
		"N-CSCAN: flat distribution (all jobs finish together)",
		ok3 && ok4 && nLast < 1.3*nFirst,
		"first %.2fs, last %.2fs", nFirst, nLast))
	out = append(out, check(
		"fairness costs bandwidth: N-CSCAN's fastest is slower than the elevator's slowest",
		ok2 && ok3 && nFirst > eLast,
		"ncscan first %.2fs vs elevator last %.2fs", nFirst, eLast))
	tFirst, ok5 := mean(r, "scsi1/elev/tags", 0)
	tLast, ok6 := mean(r, "scsi1/elev/tags", 7)
	out = append(out, check(
		"the on-disk TCQ scheduler is itself fair (flat distribution)",
		ok5 && ok6 && tLast < 1.3*tFirst,
		"tags: first %.2fs, last %.2fs", tFirst, tLast))
	return out
}

func verifyFig4(r *Result) []Check {
	var out []Check
	u1, ok1 := mean(r, "ide1", 0)
	u32, ok2 := mean(r, "ide1", 5)
	out = append(out, check(
		"NFS/UDP throughput decays as concurrent readers increase",
		ok1 && ok2 && u32 < 0.6*u1,
		"ide1: %.1f -> %.1f MB/s", u1, u32))
	i1, ok3 := mean(r, "ide1", 0)
	i4, ok4 := mean(r, "ide4", 0)
	out = append(out, check(
		"the ZCAV effect is still visible through NFS",
		ok3 && ok4 && i1 > i4,
		"1 reader: ide1 %.1f vs ide4 %.1f MB/s", i1, i4))
	nt8, ok5 := mean(r, "scsi1/no tags", 3)
	t8, ok6 := mean(r, "scsi1", 3)
	out = append(out, check(
		"disabling tagged queues helps NFS multi-reader throughput too",
		ok5 && ok6 && nt8 > t8,
		"8 readers: no-tags %.1f vs tags %.1f MB/s", nt8, t8))
	return out
}

func verifyFig5(r *Result) []Check {
	var out []Check
	t1, ok1 := mean(r, "ide1", 0)
	t32, ok2 := mean(r, "ide1", 5)
	out = append(out, check(
		"NFS/TCP is flatter across reader counts than UDP",
		ok1 && ok2 && t32 > 0.35*t1,
		"ide1: %.1f -> %.1f MB/s", t1, t32))
	return out
}

func verifyFig6(r *Result) []Check {
	var out []Check
	a8, ok1 := mean(r, "idle/always", 3)
	d8, ok2 := mean(r, "idle/default", 3)
	a2, ok3 := mean(r, "idle/always", 1)
	d2, ok4 := mean(r, "idle/default", 1)
	out = append(out, check(
		"default tracks always up to 4 readers, then diverges",
		ok1 && ok2 && ok3 && ok4 && d2 > 0.8*a2 && d8 < 0.7*a8,
		"2 readers: %.1f vs %.1f; 8 readers: %.1f vs %.1f MB/s", d2, a2, d8, a8))
	ba1, ok5 := mean(r, "busy/always", 0)
	ia1, ok6 := mean(r, "idle/always", 0)
	out = append(out, check(
		"client CPU contention lowers NFS throughput",
		ok5 && ok6 && ba1 < ia1,
		"1 reader always: busy %.1f vs idle %.1f MB/s", ba1, ia1))
	return out
}

func verifyFig7(r *Result) []Check {
	var out []Check
	old16, ok1 := mean(r, "default/default nfsheur", 4)
	new16, ok2 := mean(r, "default/new nfsheur", 4)
	always16, ok3 := mean(r, "always", 4)
	slow16, ok4 := mean(r, "slowdown/new nfsheur", 4)
	out = append(out, check(
		"the 4.x nfsheur table collapses under concurrent files",
		ok1 && ok2 && old16 < 0.8*new16,
		"16 readers: old table %.1f vs new table %.1f MB/s", old16, new16))
	out = append(out, check(
		"the new table alone recovers near-optimal read-ahead",
		ok2 && ok3 && new16 > 0.7*always16,
		"16 readers: new table %.1f vs always %.1f MB/s", new16, always16))
	out = append(out, check(
		"SlowDown makes no further improvement beyond the new table",
		ok2 && ok4 && slow16 > 0.8*new16 && slow16 < 1.25*new16,
		"16 readers: slowdown %.1f vs default %.1f MB/s", slow16, new16))
	return out
}

func verifyFig8(r *Result) []Check {
	var out []Check
	for _, disk := range []string{"scsi1", "ide1"} {
		worst := 1e9
		var worstAt int
		ok := true
		for x := range r.X {
			cur, ok1 := mean(r, disk+"/cursor", x)
			def, ok2 := mean(r, disk+"/default", x)
			if !ok1 || !ok2 {
				ok = false
				break
			}
			if ratio := cur / def; ratio < worst {
				worst, worstAt = ratio, r.X[x]
			}
		}
		out = append(out, check(
			fmt.Sprintf("cursors beat the default heuristic on every %s stride", disk),
			ok && worst > 1.0,
			"worst ratio %.2fx at s=%d", worst, worstAt))
	}
	return out
}

func verifyWritePath(r *Result) []Check {
	var out []Check
	// X index 2 is a comfortably nonzero window (4 ms).
	const winIdx = 2
	for _, sink := range []string{"fast", "slow"} {
		sync4, ok1 := mean(r, "filesync ops/s ("+sink+" sink)", winIdx)
		unst4, ok2 := mean(r, "unstable+commit ops/s ("+sink+" sink)", winIdx)
		out = append(out, check(
			fmt.Sprintf("unstable+COMMIT beats FILE_SYNC on the %s throttled sink at a nonzero window", sink),
			ok1 && ok2 && unst4 > sync4,
			"4ms window: unstable %.0f vs filesync %.0f ops/s", unst4, sync4))
	}
	fl4, ok3 := mean(r, "sink flushes per 1k writes", winIdx)
	out = append(out, check(
		"gathering flushes far fewer times than the client writes",
		ok3 && fl4 < 500,
		"4ms window: %.0f flushes per 1000 writes", fl4))
	hot0, ok4 := mean(r, "hotspot flushed/gathered (%)", 0)
	hot4, ok5 := mean(r, "hotspot flushed/gathered (%)", winIdx)
	out = append(out, check(
		"overlapping rewrites coalesce inside the window (flushed << gathered)",
		ok4 && ok5 && hot4 < hot0 && hot4 < 50,
		"flushed/gathered: %.0f%% at window 0 vs %.0f%% at 4ms", hot0, hot4))
	sp99, ok6 := mean(r, "filesync write p99 (µs, slow sink)", winIdx)
	up50, ok7 := mean(r, "unstable write p50 (µs, slow sink)", winIdx)
	out = append(out, check(
		"a typical pipelined unstable write is faster than a p99 synchronous one",
		ok6 && ok7 && up50 < sp99,
		"slow sink, 4ms window: unstable p50 %.0fµs vs filesync p99 %.0fµs", up50, sp99))
	return out
}

func verifyZCAVLive(r *Result) []Check {
	var out []Check
	// x index 0 is the paper's 8 KB request size.
	oc, ok1 := mean(r, "outer/cold", 0)
	ic, ok2 := mean(r, "inner/cold", 0)
	out = append(out, check(
		"cold cache: outer-zone live READ throughput >= 1.2x inner-zone",
		ok1 && ok2 && oc >= 1.2*ic,
		"8K: outer %.1f vs inner %.1f MB/s (%.2fx)", oc, ic, oc/ic))
	ow, ok3 := mean(r, "outer/warm", 0)
	iw, ok4 := mean(r, "inner/warm", 0)
	gap := 1.0
	if ok3 && ok4 && ow > 0 && iw > 0 {
		gap = (ow - iw) / ow
		if gap < 0 {
			gap = -gap
		}
	}
	out = append(out, check(
		"warm cache: the placement gap closes to < 5%",
		ok3 && ok4 && gap < 0.05,
		"8K: outer %.1f vs inner %.1f MB/s (gap %.1f%%)", ow, iw, gap*100))
	out = append(out, check(
		"cache warmth dominates placement (warm inner beats cold outer)",
		ok1 && ok4 && iw > 2*oc,
		"8K: warm inner %.1f vs cold outer %.1f MB/s", iw, oc))
	return out
}

// FormatChecks renders verification results, one line per check.
func FormatChecks(checks []Check) string {
	out := ""
	for _, c := range checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		out += fmt.Sprintf("  [%s] %s (%s)\n", mark, c.Claim, c.Got)
	}
	return out
}
