package bench

import "testing"

// TestAllocProfileShape smoke-tests the allocator-traffic experiment
// and checks the property the zero-copy pipeline exists to provide:
// READ bytes-per-op must stay within a small multiple of the transfer
// size (one reply-body copy plus headers), not the several-copies
// multiple the pre-pooling path paid. Absolute allocator numbers vary
// by Go version, so the bound is deliberately loose.
func TestAllocProfileShape(t *testing.T) {
	r, err := AllocProfile(Params{Runs: 1, Scale: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Samples) != len(allocSizes) {
			t.Fatalf("series %s has %d samples, want %d", s.Label, len(s.Samples), len(allocSizes))
		}
		for i, smp := range s.Samples {
			if smp.Mean <= 0 {
				t.Fatalf("series %s x=%d mean %.3f", s.Label, allocSizes[i], smp.Mean)
			}
		}
	}
	reads, ok := r.SeriesByLabel("READ KB/op")
	if !ok {
		t.Fatal("READ KB/op series missing")
	}
	if raceEnabled {
		// The race detector multiplies allocator traffic; only the
		// well-formedness checks above are meaningful under it.
		return
	}
	for i, size := range allocSizes {
		kb := reads.Samples[i].Mean
		// One payload copy + RPC overhead; 3x leaves generous headroom
		// while still failing if a second payload-sized copy returns.
		limit := 3*float64(size)/1024 + 4
		if kb > limit {
			t.Errorf("READ %d B costs %.1f KB/op, want < %.1f (payload re-copying crept back in)", size, kb, limit)
		}
	}
	if len(r.Notes) < 3 {
		t.Fatalf("expected fixed-procedure notes, got %v", r.Notes)
	}
}
