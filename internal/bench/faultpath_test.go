package bench

import (
	"testing"
)

// TestFaultPathSmoke runs the experiment end to end at tiny scale and
// checks the result shape: 4 goodput + 4 p99 series over the loss
// sweep, every cell with positive rates.
func TestFaultPathSmoke(t *testing.T) {
	r, err := FaultPath(Params{Runs: 1, Scale: 12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 8 {
		t.Fatalf("series = %d, want 8 (4 goodput + 4 p99)", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Samples) != len(r.X) {
			t.Fatalf("%s: %d samples for %d X values", s.Label, len(s.Samples), len(r.X))
		}
		for i, sm := range s.Samples {
			if !(sm.Mean > 0) {
				t.Errorf("%s[x=%d]: mean %v, want > 0", s.Label, r.X[i], sm.Mean)
			}
		}
	}
	for _, label := range []string{
		"udp/drc=on/goodput", "udp/drc=off/goodput",
		"tcp/drc=on/p99ms", "tcp/drc=off/p99ms",
	} {
		if _, ok := r.SeriesByLabel(label); !ok {
			t.Errorf("missing series %q", label)
		}
	}
}

// TestFaultPathLossyUDPWithDRC is the headline acceptance cell: a
// create/rename/remove workload over UDP with 5% per-direction
// datagram loss, DRC on, must complete with zero spurious NOENT/EXIST
// answers and zero duplicated executions — every retransmission that
// reaches the server is answered from the cache, never re-run.
func TestFaultPathLossyUDPWithDRC(t *testing.T) {
	p := Params{Runs: 1, Scale: 1, Seed: 42}
	p.fill()
	m, err := faultCell("udp", 5, true, faultTriplets(p), 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.spurious != 0 {
		t.Errorf("spurious NOENT/EXIST answers = %d, want 0", m.spurious)
	}
	if m.dupExec != 0 {
		t.Errorf("duplicated executions = %d, want 0", m.dupExec)
	}
	drops := m.faultsIn.Drops + m.faultsOut.Drops
	if drops == 0 {
		t.Error("no datagrams dropped at 5% loss — injector not wired to the server")
	}
	if m.retry.Retransmits == 0 {
		t.Error("no client retransmissions under loss — retry layer not engaged")
	}
	t.Logf("drops=%d retransmits=%d drcHits=%d drcBusy=%d goodput=%.0f ops/s p99=%.1fms",
		drops, m.retry.Retransmits, m.drcHits, m.drcBusy, m.goodput, m.p99ms)
}

// TestFaultPathLossyUDPWithoutDRC pins the counterpart: the same lossy
// workload with the DRC off lets retransmissions re-execute
// non-idempotent procedures. The workload still terminates (the triplet
// loop tolerates the wrong answers), and the duplicate executions are
// visible in the executed-procedure counts.
func TestFaultPathLossyUDPWithoutDRC(t *testing.T) {
	p := Params{Runs: 1, Scale: 1, Seed: 42}
	p.fill()
	m, err := faultCell("udp", 5, false, faultTriplets(p), 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.dupExec == 0 {
		t.Error("no duplicated executions with DRC off at 5% loss — expected re-runs")
	}
	t.Logf("spurious=%d dupExec=%d retransmits=%d", m.spurious, m.dupExec, m.retry.Retransmits)
}
