package bench

import "testing"

// TestTraceReplayEndToEnd runs the capture→replay experiment at a small
// scale over real loopback sockets and checks the acceptance shape:
// every schedule produced load, the unthrottled replay beats the
// faithful one, and the timestamp-faithful replay reproduced the
// captured arrival span within measurement noise (the span-error
// series).
func TestTraceReplayEndToEnd(t *testing.T) {
	r, err := TraceReplay(Params{Runs: 1, Scale: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.X) != len(traceReplaySpeeds) {
		t.Fatalf("X = %v", r.X)
	}
	ops, ok := r.SeriesByLabel("achieved ops/s")
	if !ok {
		t.Fatal("ops/s series missing")
	}
	idx := func(speed int) int {
		for i, s := range r.X {
			if s == speed {
				return i
			}
		}
		t.Fatalf("speed %d not in X %v", speed, r.X)
		return -1
	}
	for i, s := range ops.Samples {
		if s.Mean <= 0 {
			t.Fatalf("speed %d: ops/s %.1f", r.X[i], s.Mean)
		}
	}
	if fast, faithful := ops.Samples[idx(0)].Mean, ops.Samples[idx(1)].Mean; fast <= faithful {
		t.Fatalf("unthrottled %.0f ops/s not above faithful %.0f", fast, faithful)
	}

	// Timing fidelity: the faithful schedule's arrival-span error stays
	// within measurement noise. The workload's gaps are
	// traceReplayGap-sized, so 25% covers scheduler jitter on a loaded
	// CI host while still failing if the schedule is simply ignored
	// (which would show up as ~100% error).
	spanErr, ok := r.SeriesByLabel("span error (%)")
	if !ok {
		t.Fatal("span-error series missing")
	}
	if e := spanErr.Samples[idx(1)].Mean; e > 25 {
		t.Fatalf("faithful replay span error %.1f%%", e)
	}

	// Latency percentiles are ordered and positive.
	p50, _ := r.SeriesByLabel("p50 latency (µs)")
	p99, _ := r.SeriesByLabel("p99 latency (µs)")
	for i := range r.X {
		if p50.Samples[i].Mean <= 0 || p99.Samples[i].Mean < p50.Samples[i].Mean {
			t.Fatalf("speed %d: p50 %.1f p99 %.1f", r.X[i], p50.Samples[i].Mean, p99.Samples[i].Mean)
		}
	}
}
