package bench

import (
	"fmt"
	"sync"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/readahead"
	"nfstricks/internal/stats"
	"nfstricks/internal/workload"
)

// liveClientCounts is the concurrent-client sweep for the live-scale
// experiment.
var liveClientCounts = []int{1, 2, 4, 8, 16}

// liveShardCounts are the nfsheur shard configurations compared: 1
// shard is the seed's effective configuration (every READ serialized on
// one table lock), the others stripe the table.
var liveShardCounts = []int{1, 4, 8}

// liveBytesPerClient is how much each client reads per run at Scale 1.
const liveBytesPerClient = 16 * workload.MB

// liveScaleCell runs n concurrent clients against a live loopback
// server whose nfsheur table has the given shard count, and returns the
// aggregate READ throughput in MB/s.
func liveScaleCell(shards, n int, p Params) (float64, error) {
	perClient := liveBytesPerClient / int64(p.Scale)
	if perClient < 64*1024 {
		perClient = 64 * 1024
	}
	fs := memfs.NewFS()
	payload := make([]byte, perClient)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		fs.Create(memfs.RootFH, names[i], payload)
	}
	tp := nfsheur.ScaledParams()
	tp.Shards = shards
	svc := memfs.NewService(fs, readahead.SlowDown{}, nfsheur.New(tp))
	srv, err := memfs.NewServer("127.0.0.1:0", svc)
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	clients := make([]*memfs.Client, n)
	for i := range clients {
		c, err := memfs.DialClient("tcp", srv.Addr())
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(c *memfs.Client, name string) {
			defer wg.Done()
			fh, size, err := c.Lookup(memfs.RootFH, name)
			if err != nil {
				errs <- err
				return
			}
			for off := uint64(0); off < uint64(size); off += 8192 {
				if _, _, err := c.Read(fh, off, 8192); err != nil {
					errs <- err
					return
				}
			}
		}(c, names[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	total := float64(perClient) * float64(n)
	return total / 1e6 / elapsed.Seconds(), nil
}

// LiveScale is the live-server saturation benchmark: it sweeps
// concurrent clients against real loopback sockets and reports
// aggregate READ throughput per nfsheur shard count. With one shard
// every READ funnels through a single table mutex — the
// hidden-serialization benchmarking trap; striping the table lets
// concurrent clients proceed in parallel (visible on multi-core hosts;
// with GOMAXPROCS=1 the series coincide, which is itself the honest
// result).
//
// Unlike every other experiment this one measures the real machine —
// wall-clock time over real sockets — so absolute numbers vary by host;
// the claim under test is the relative shape across shard counts.
func LiveScale(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "live-scale", Title: "Live server saturation: nfsheur sharding vs concurrent clients",
		XLabel: "clients", YLabel: "throughput (MB/s)",
		X: liveClientCounts,
	}
	for _, shards := range liveShardCounts {
		s := Series{Label: fmt.Sprintf("shards=%d", shards)}
		for _, n := range liveClientCounts {
			var xs []float64
			for run := 0; run < p.Runs; run++ {
				mbps, err := liveScaleCell(shards, n, p)
				if err != nil {
					return nil, fmt.Errorf("live-scale shards=%d n=%d: %w", shards, n, err)
				}
				xs = append(xs, mbps)
			}
			s.Samples = append(s.Samples, stats.Summarize(xs))
		}
		r.Series = append(r.Series, s)
	}
	r.Notes = append(r.Notes,
		"real wall-clock over loopback sockets; absolute MB/s is host-dependent",
		"shards=1 reproduces the seed's single-mutex READ path")
	return r, nil
}
