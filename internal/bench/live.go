package bench

import (
	"fmt"
	"sync"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/obs"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/stats"
	"nfstricks/internal/workload"
)

// liveClientCounts is the concurrent-client sweep for the live-scale
// experiment.
var liveClientCounts = []int{1, 2, 4, 8, 16}

// liveShardCounts are the nfsheur shard configurations compared: 1
// shard is the seed's effective configuration (every READ serialized on
// one table lock), the others stripe the table.
var liveShardCounts = []int{1, 4, 8}

// liveBytesPerClient is how much each client reads per run at Scale 1.
const liveBytesPerClient = 16 * workload.MB

// liveScaleCell runs n concurrent clients against a live loopback
// server whose nfsheur table has the given shard count, and returns the
// aggregate READ throughput in MB/s. With reg non-nil the server runs
// fully instrumented — per-request stage spans, per-proc counters —
// which is also how the observability cost bound is measured (reg nil =
// metrics off).
func liveScaleCell(shards, n int, p Params, reg *obs.Registry) (float64, error) {
	perClient := liveBytesPerClient / int64(p.Scale)
	if perClient < 64*1024 {
		perClient = 64 * 1024
	}
	fs := memfs.NewFS()
	payload := make([]byte, perClient)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		fs.Create(memfs.RootFH, names[i], payload)
	}
	tp := nfsheur.ScaledParams()
	tp.Shards = shards
	svc := nfsd.New(fs, nfsd.Config{
		Heuristic: readahead.SlowDown{},
		Table:     nfsheur.New(tp),
		Obs:       reg,
	})
	defer svc.Close()
	srv, err := nfsd.NewServerOpts("127.0.0.1:0", svc,
		rpcnet.ServerOptions{Spans: svc.SpanTable()})
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	clients := make([]*memfs.Client, n)
	for i := range clients {
		c, err := memfs.DialClient("tcp", srv.Addr())
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(c *memfs.Client, name string) {
			defer wg.Done()
			fh, size, err := c.Lookup(memfs.RootFH, name)
			if err != nil {
				errs <- err
				return
			}
			for off := uint64(0); off < uint64(size); off += 8192 {
				if _, _, err := c.Read(fh, off, 8192); err != nil {
					errs <- err
					return
				}
			}
		}(c, names[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	total := float64(perClient) * float64(n)
	return total / 1e6 / elapsed.Seconds(), nil
}

// LiveScale is the live-server saturation benchmark: it sweeps
// concurrent clients against real loopback sockets and reports
// aggregate READ throughput per nfsheur shard count. With one shard
// every READ funnels through a single table mutex — the
// hidden-serialization benchmarking trap; striping the table lets
// concurrent clients proceed in parallel (visible on multi-core hosts;
// with GOMAXPROCS=1 the series coincide, which is itself the honest
// result).
//
// Every measured run is fully instrumented (a fresh obs registry per
// run: stage spans on each request, per-proc counters), so the numbers
// are the observable server's numbers. Two extra notes report what the
// instrumentation shows and what it costs: the busiest cell's per-stage
// latency breakdown, and the throughput delta between metrics-on and
// metrics-off on that same cell (the issue's <3% bound).
//
// Unlike every other experiment this one measures the real machine —
// wall-clock time over real sockets — so absolute numbers vary by host;
// the claim under test is the relative shape across shard counts.
func LiveScale(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "live-scale", Title: "Live server saturation: nfsheur sharding vs concurrent clients",
		XLabel: "clients", YLabel: "throughput (MB/s)",
		X: liveClientCounts,
	}
	var busiest obs.ProcStats
	maxShards := liveShardCounts[len(liveShardCounts)-1]
	maxClients := liveClientCounts[len(liveClientCounts)-1]
	for _, shards := range liveShardCounts {
		s := Series{Label: fmt.Sprintf("shards=%d", shards), Better: BetterHigher}
		for _, n := range liveClientCounts {
			stop := p.startCellProfile(fmt.Sprintf("live-scale_shards%d_c%d", shards, n))
			var xs []float64
			for run := 0; run < p.Runs; run++ {
				reg := obs.NewRegistry()
				mbps, err := liveScaleCell(shards, n, p, reg)
				if err != nil {
					stop()
					return nil, fmt.Errorf("live-scale shards=%d n=%d: %w", shards, n, err)
				}
				xs = append(xs, mbps)
				if shards == maxShards && n == maxClients {
					if ps, ok := reg.Spans("nfsd_op", nil).ProcSummary("READ"); ok {
						busiest = ps
					}
				}
			}
			stop()
			s.Samples = append(s.Samples, stats.Summarize(xs))
		}
		r.Series = append(r.Series, s)
	}
	if busiest.Count > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("stage breakdown (shards=%d clients=%d, last run) READ: %s",
			maxShards, maxClients, busiest.Note()))
	}

	// The observability cost probe: the busiest cell again, metrics on
	// vs off, paired runs. The issue's acceptance bound is 3%; loopback
	// throughput is noisy, so this is a report, not a gate — the gating
	// check is the allocation test in internal/nfsd.
	probes := p.Runs
	if probes > 3 {
		probes = 3
	}
	var on, off []float64
	for i := 0; i < probes; i++ {
		// Alternate which side runs first so per-pair warmup drift
		// (allocator growth, scheduler state) doesn't bias one side.
		for j := 0; j < 2; j++ {
			var reg *obs.Registry
			if (i+j)%2 == 0 {
				reg = obs.NewRegistry()
			}
			v, err := liveScaleCell(maxShards, maxClients, p, reg)
			if err != nil {
				return nil, err
			}
			if reg != nil {
				on = append(on, v)
			} else {
				off = append(off, v)
			}
		}
	}
	sOn, sOff := stats.Summarize(on), stats.Summarize(off)
	delta := 0.0
	if sOff.Mean > 0 {
		delta = (sOff.Mean - sOn.Mean) / sOff.Mean * 100
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("obs overhead probe (shards=%d clients=%d, %d paired runs): on=%.1f MB/s off=%.1f MB/s (%.1f%% cost)",
			maxShards, maxClients, probes, sOn.Mean, sOff.Mean, delta),
		"real wall-clock over loopback sockets; absolute MB/s is host-dependent",
		"shards=1 reproduces the seed's single-mutex READ path")
	return r, nil
}
