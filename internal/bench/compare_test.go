package bench

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"nfstricks/internal/stats"
)

// synthArtifact builds a one-experiment artifact whose cells hold runs
// drawn from normal distributions: gen(series, x) returns (mean,
// stddev). Deterministic for a given seed.
func synthArtifact(seed int64, runs int, series []string, better string, xs []int,
	gen func(series string, x int) (mu, sigma float64)) *Artifact {
	rng := rand.New(rand.NewSource(seed))
	r := &Result{ID: "synth", Title: "synthetic", XLabel: "x", YLabel: "MB/s", X: xs}
	for _, label := range series {
		s := Series{Label: label, Better: better}
		for _, x := range xs {
			mu, sigma := gen(label, x)
			vals := make([]float64, runs)
			for i := range vals {
				vals[i] = mu + sigma*rng.NormFloat64()
			}
			s.Samples = append(s.Samples, stats.Summarize(vals))
		}
		r.Series = append(r.Series, s)
	}
	return &Artifact{
		Meta:    RunMeta{EnvMeta: EnvMeta{Hostname: "synth-host"}, Runs: runs, Seed: seed},
		Results: []*Result{r},
	}
}

// The acceptance-criteria pair. A ~20% regression injected into one
// cell must fail the gate naming exactly that cell; an A/A comparison
// (same distributions, different seeds) must pass it.
func TestCompareGateFlagsInjectedRegression(t *testing.T) {
	baseline := func(series string, x int) (float64, float64) { return 100 + float64(x), 1.5 }
	old := synthArtifact(1, 8, []string{"shards=1", "shards=8"}, BetterHigher, []int{1, 8}, baseline)
	// Same code, different seed — except one cell loses 20%.
	regressed := func(series string, x int) (float64, float64) {
		mu, sigma := baseline(series, x)
		if series == "shards=8" && x == 8 {
			mu *= 0.80
		}
		return mu, sigma
	}
	new := synthArtifact(2, 8, []string{"shards=1", "shards=8"}, BetterHigher, []int{1, 8}, regressed)

	c := CompareArtifacts(old, new, CompareOptions{})
	regs := c.Regressions()
	if len(regs) != 1 {
		t.Fatalf("want exactly 1 regression, got %d:\n%s", len(regs), c.Format())
	}
	d := regs[0]
	if d.Key.Exp != "synth" || d.Key.Series != "shards=8" || d.Key.X != 8 {
		t.Fatalf("wrong cell flagged: %s", d.Key)
	}
	if d.DeltaPct > -15 || d.DeltaPct < -25 {
		t.Fatalf("delta %.1f%%, want ~-20%%", d.DeltaPct)
	}
	if d.ShiftCI[1] >= 0 {
		t.Fatalf("shift CI %v should be entirely negative", d.ShiftCI)
	}
	summary := c.GateSummary()
	if !strings.Contains(summary, "FAIL") || !strings.Contains(summary, "synth/shards=8 x=8") {
		t.Fatalf("gate summary must name the regressing cell:\n%s", summary)
	}
	// The full report flags it too.
	if !strings.Contains(c.Format(), "REGRESSION") {
		t.Fatalf("report lacks REGRESSION marker:\n%s", c.Format())
	}
}

func TestCompareAAPasses(t *testing.T) {
	gen := func(series string, x int) (float64, float64) { return 100 + float64(x), 2 }
	series := []string{"shards=1", "shards=4", "shards=8"}
	xs := []int{1, 4, 8, 16}
	old := synthArtifact(10, 10, series, BetterHigher, xs, gen)
	new := synthArtifact(20, 10, series, BetterHigher, xs, gen) // different seed, same code
	c := CompareArtifacts(old, new, CompareOptions{})
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("A/A comparison flagged %d regressions:\n%s", len(regs), c.Format())
	}
	if !strings.Contains(c.GateSummary(), "PASS") {
		t.Fatalf("gate summary:\n%s", c.GateSummary())
	}
}

// Direction: for a latency-flavored series an increase is the
// regression, and the explicit Better field must override any label
// reading.
func TestCompareDirection(t *testing.T) {
	old := synthArtifact(1, 8, []string{"p99"}, BetterLower, []int{1},
		func(string, int) (float64, float64) { return 10, 0.2 })
	new := synthArtifact(2, 8, []string{"p99"}, BetterLower, []int{1},
		func(string, int) (float64, float64) { return 13, 0.2 })
	c := CompareArtifacts(old, new, CompareOptions{})
	if len(c.Regressions()) != 1 {
		t.Fatalf("latency increase not flagged as regression:\n%s", c.Format())
	}
	// Same numbers on a throughput series: an increase is an improvement.
	old.Results[0].Series[0].Better = BetterHigher
	new.Results[0].Series[0].Better = BetterHigher
	c = CompareArtifacts(old, new, CompareOptions{})
	if len(c.Regressions()) != 0 || len(c.Improvements()) != 1 {
		t.Fatalf("throughput increase misclassified:\n%s", c.Format())
	}
}

// A significant but tiny change must not trip a gate run with an
// effect floor (the cross-machine CI configuration).
func TestCompareMinEffectFloor(t *testing.T) {
	old := synthArtifact(1, 12, []string{"s"}, BetterHigher, []int{1},
		func(string, int) (float64, float64) { return 100, 0.05 })
	new := synthArtifact(2, 12, []string{"s"}, BetterHigher, []int{1},
		func(string, int) (float64, float64) { return 99, 0.05 }) // -1%, tight noise
	if regs := CompareArtifacts(old, new, CompareOptions{}).Regressions(); len(regs) != 1 {
		t.Fatalf("without a floor the -1%% shift should be significant, got %d", len(regs))
	}
	c := CompareArtifacts(old, new, CompareOptions{MinEffectPct: 5})
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("min-effect floor ignored: %d regressions", len(regs))
	}
}

// Old artifacts (no raw Values) must still decode and compare via the
// normal-approximation fallback, with the fallback noted.
func TestCompareLegacyArtifactFallback(t *testing.T) {
	legacyJSON := `{
	  "meta": {"go_version": "go1.22", "goos": "linux", "goarch": "amd64",
	            "gomaxprocs": 8, "num_cpu": 8, "timestamp": "2026-01-01T00:00:00Z",
	            "seed": 1, "runs": 10, "scale": 1, "experiments": ["live-scale"]},
	  "results": [{
	    "ID": "live-scale", "Title": "t", "XLabel": "clients", "YLabel": "throughput (MB/s)",
	    "X": [1],
	    "Series": [{"Label": "shards=8",
	      "Samples": [{"N": 10, "Mean": 100, "StdDev": 1, "Min": 98, "Max": 102}]}],
	    "Notes": null
	  }]
	}`
	var old Artifact
	if err := json.Unmarshal([]byte(legacyJSON), &old); err != nil {
		t.Fatalf("legacy artifact no longer decodes: %v", err)
	}
	if old.Meta.GoVersion != "go1.22" || old.Results[0].Series[0].Samples[0].Mean != 100 {
		t.Fatalf("legacy artifact decoded wrong: %+v", old)
	}
	// New side regressed 20% with raw samples present.
	new := synthArtifact(3, 10, []string{"shards=8"}, BetterHigher, []int{1},
		func(string, int) (float64, float64) { return 80, 1 })
	new.Results[0].ID = "live-scale"
	c := CompareArtifacts(&old, new, CompareOptions{})
	if len(c.Cells) != 1 {
		t.Fatalf("cells: %d", len(c.Cells))
	}
	d := c.Cells[0]
	if !strings.Contains(d.Note, "fallback") {
		t.Fatalf("fallback not noted: %+v", d)
	}
	if !d.Regression {
		t.Fatalf("20%% drop vs legacy baseline not flagged:\n%s", c.Format())
	}
}

func TestCompareUnpairedCells(t *testing.T) {
	old := synthArtifact(1, 5, []string{"a", "gone"}, BetterHigher, []int{1, 2},
		func(string, int) (float64, float64) { return 10, 1 })
	new := synthArtifact(2, 5, []string{"a", "added"}, BetterHigher, []int{2, 3},
		func(string, int) (float64, float64) { return 10, 1 })
	c := CompareArtifacts(old, new, CompareOptions{})
	if len(c.Cells) != 1 || c.Cells[0].Key.X != 2 || c.Cells[0].Key.Series != "a" {
		t.Fatalf("pairing wrong: %+v", c.Cells)
	}
	joined := strings.Join(c.Unpaired, "\n")
	for _, want := range []string{"synth/gone (old only)", "synth/added (new only)",
		"synth/a x=1 (old only)", "synth/a x=3 (new only)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("unpaired missing %q:\n%s", want, joined)
		}
	}
}

// RunInterleaved must alternate which side goes first each round and
// merge the per-round values in round order.
func TestRunInterleavedAlternatesAndMerges(t *testing.T) {
	var order []string
	mk := func(name string, base float64) RoundRunner {
		return func(round int) (*Result, error) {
			order = append(order, name)
			return &Result{
				ID: "synth", X: []int{1},
				Series: []Series{{Label: "s",
					Samples: []stats.Sample{stats.Summarize([]float64{base + float64(round)})}}},
			}, nil
		}
	}
	ra, rb, err := RunInterleaved(mk("A", 100), mk("B", 200), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "B", "A", "A", "B", "B", "A"}
	if strings.Join(order, "") != strings.Join(want, "") {
		t.Fatalf("execution order %v, want %v", order, want)
	}
	sa := ra.Series[0].Samples[0]
	sb := rb.Series[0].Samples[0]
	if sa.N != 4 || sb.N != 4 {
		t.Fatalf("merged N = %d/%d, want 4/4", sa.N, sb.N)
	}
	// Values accumulate in round order regardless of A/B position.
	for i, v := range sa.Values {
		if v != 100+float64(i) {
			t.Fatalf("A values %v not in round order", sa.Values)
		}
	}
	if sa.Median != 101.5 || sb.Median != 201.5 {
		t.Fatalf("merged medians %v/%v", sa.Median, sb.Median)
	}
}

// A single-run sample arriving without raw values (an older binary on
// the far side of the exec boundary) contributes its mean.
func TestMergeRoundLegacySample(t *testing.T) {
	legacy := func(v float64) *Result {
		return &Result{ID: "synth", X: []int{1},
			Series: []Series{{Label: "s", Samples: []stats.Sample{{N: 1, Mean: v}}}}}
	}
	acc, err := mergeRound(nil, legacy(5))
	if err != nil {
		t.Fatal(err)
	}
	if acc, err = mergeRound(acc, legacy(7)); err != nil {
		t.Fatal(err)
	}
	finalizeMerged(acc)
	s := acc.Series[0].Samples[0]
	if s.N != 2 || s.Median != 6 {
		t.Fatalf("legacy merge: %+v", s)
	}
}

func TestMergeRoundShapeMismatch(t *testing.T) {
	a := &Result{ID: "synth", X: []int{1},
		Series: []Series{{Label: "s", Samples: []stats.Sample{{N: 1, Mean: 1}}}}}
	b := &Result{ID: "other"}
	if _, err := mergeRound(a, b); err == nil {
		t.Fatal("mismatched IDs must not merge")
	}
	c := &Result{ID: "synth", X: []int{1},
		Series: []Series{{Label: "t", Samples: []stats.Sample{{N: 1, Mean: 1}}}}}
	if _, err := mergeRound(a, c); err == nil {
		t.Fatal("mismatched series labels must not merge")
	}
}

// The real thing, end to end: an interleaved A/A of an actual
// experiment (same code, different seeds) must pass the gate — the
// noise floor is respected on genuine measurements, not only on
// synthetic ones.
func TestInterleavedAARealExperimentPassesGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment repeatedly")
	}
	e, ok := Lookup("fig1")
	if !ok {
		t.Fatal("fig1 missing")
	}
	p := Params{Runs: 1, Scale: 64, Seed: 1}
	ra, rb, err := RunInterleaved(
		InProcessRunner(e, p, 1),
		InProcessRunner(e, p, 1001), // different seeds, same code
		4)
	if err != nil {
		t.Fatal(err)
	}
	old := &Artifact{Meta: CollectMeta(p, []string{"fig1"}), Results: []*Result{ra}}
	new := &Artifact{Meta: CollectMeta(p, []string{"fig1"}), Results: []*Result{rb}}
	c := CompareArtifacts(old, new, CompareOptions{})
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("A/A run of fig1 failed the gate (%d regressions):\n%s",
			len(regs), c.Format())
	}
}
