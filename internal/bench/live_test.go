package bench

import "testing"

// TestLiveScaleShape smoke-tests the real-socket saturation experiment
// at a tiny scale: every cell must produce a positive throughput and
// the result must carry one series per shard configuration. (Relative
// speedups across shard counts are host-dependent — GOMAXPROCS=1 CI
// machines legitimately show none — so the shape check stops at
// well-formedness.)
func TestLiveScaleShape(t *testing.T) {
	r, err := LiveScale(Params{Runs: 1, Scale: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(liveShardCounts) {
		t.Fatalf("got %d series, want %d", len(r.Series), len(liveShardCounts))
	}
	for _, s := range r.Series {
		if len(s.Samples) != len(liveClientCounts) {
			t.Fatalf("series %s has %d samples", s.Label, len(s.Samples))
		}
		for i, smp := range s.Samples {
			if smp.Mean <= 0 {
				t.Fatalf("series %s x=%d mean %.3f", s.Label, liveClientCounts[i], smp.Mean)
			}
		}
	}
	if _, ok := r.SeriesByLabel("shards=1"); !ok {
		t.Fatal("single-mutex baseline series missing")
	}
}
