package bench

import (
	"errors"
	"fmt"
	"testing"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/vfs"
)

// TestMetadataPathSmoke runs the experiment end to end at tiny scale
// and checks every series carries positive rates and the result shape
// is complete.
func TestMetadataPathSmoke(t *testing.T) {
	r, err := MetadataPath(Params{Runs: 1, Scale: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 9 {
		t.Fatalf("series = %d, want 9 (4 mem + 5 zone)", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Samples) != len(r.X) {
			t.Fatalf("%s: %d samples for %d X values", s.Label, len(s.Samples), len(r.X))
		}
		for i, sm := range s.Samples {
			if !(sm.Mean > 0) {
				t.Errorf("%s[x=%d]: mean %v, want > 0", s.Label, r.X[i], sm.Mean)
			}
		}
	}
	for _, label := range []string{"mem/create", "mem/readdir", "zone/readdir-cold", "zone/readdir-warm"} {
		if _, ok := r.SeriesByLabel(label); !ok {
			t.Errorf("missing series %q", label)
		}
	}
}

// TestLiveReaddirPagingMidMutation is the acceptance property over
// real TCP: a client pages a 1000-entry directory in small replies
// while a second client removes an entry mid-scan. The resumed page
// must draw NFS3ERR_BAD_COOKIE (the verifier changed), and the
// restart-from-zero recovery in ReaddirAll must then deliver a
// complete, duplicate-free scan of the surviving entries.
func TestLiveReaddirPagingMidMutation(t *testing.T) {
	const entries = 1000
	fs := memfs.NewFS()
	svc := nfsd.New(fs, nfsd.Config{})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	scanner, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer scanner.Close()
	mutator, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mutator.Close()

	dir, err := scanner.Mkdir(memfs.RootFH, "big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		if _, err := mutator.Create(dir, fmt.Sprintf("e%04d", i), 16); err != nil {
			t.Fatal(err)
		}
	}

	// Page a few small replies in, then mutate: the remove bumps the
	// directory's cookie verifier, so resuming with the old verifier
	// must be rejected rather than silently skipping or repeating
	// entries around the removed one.
	page, err := scanner.Readdir(dir, 0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) == 0 || page.EOF {
		t.Fatalf("first page: %d entries eof=%v, want a partial page", len(page.Entries), page.EOF)
	}
	last := page.Entries[len(page.Entries)-1]
	if err := mutator.Remove(dir, "e0900"); err != nil {
		t.Fatal(err)
	}
	if _, err := scanner.Readdir(dir, last.Cookie, page.Cookieverf, 512); !errors.Is(err, vfs.ErrBadCookie) {
		t.Fatalf("resume after remove: err=%v, want ErrBadCookie", err)
	}

	// ReaddirAll hides the restart: one call, a full consistent scan.
	got, err := scanner.ReaddirAll(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != entries-1 {
		t.Fatalf("scanned %d entries, want %d", len(got), entries-1)
	}
	seen := make(map[string]bool, len(got))
	for _, e := range got {
		if seen[e.Name] {
			t.Fatalf("duplicate entry %q in restarted scan", e.Name)
		}
		seen[e.Name] = true
	}
	if seen["e0900"] {
		t.Fatal("removed entry still listed")
	}
	if !seen["e0000"] || !seen["e0999"] {
		t.Fatal("scan missing boundary entries")
	}
}

// TestLiveReaddirCreateDoesNotInvalidate pins the other half of the
// verifier contract over the wire: creates never invalidate an
// in-flight scan (only unlinks do), and the resumed scan picks up
// exactly the entries past the cookie.
func TestLiveReaddirCreateDoesNotInvalidate(t *testing.T) {
	fs := memfs.NewFS()
	svc := nfsd.New(fs, nfsd.Config{})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dir, err := c.Mkdir(memfs.RootFH, "d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := c.Create(dir, fmt.Sprintf("f%02d", i), 8); err != nil {
			t.Fatal(err)
		}
	}
	page, err := c.Readdir(dir, 0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if page.EOF {
		t.Fatal("want a partial first page")
	}
	if _, err := c.Create(dir, "late-arrival", 8); err != nil {
		t.Fatal(err)
	}
	last := page.Entries[len(page.Entries)-1].Cookie
	total := len(page.Entries)
	sawLate := false
	verf := page.Cookieverf
	for cookie := last; ; {
		next, err := c.Readdir(dir, cookie, verf, 512)
		if err != nil {
			t.Fatalf("resume after create: %v", err)
		}
		for _, e := range next.Entries {
			total++
			cookie = e.Cookie
			if e.Name == "late-arrival" {
				sawLate = true
			}
		}
		verf = next.Cookieverf
		if next.EOF {
			break
		}
	}
	if total != 41 || !sawLate {
		t.Fatalf("resumed scan saw %d entries (late=%v), want 41 with the new entry", total, sawLate)
	}
}
