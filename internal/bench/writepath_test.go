package bench

import "testing"

// TestWritePathExperiment smoke-runs the write-path sweep at reduced
// scale and asserts the acceptance shape: the asynchronous pipeline
// beats the synchronous baseline on the throttled sink once the gather
// window is nonzero, with far fewer sink flushes than client writes,
// while the zero-width window (checked inside the experiment against
// the in-memory sink) reproduces the synchronous behaviour.
func TestWritePathExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live write-path sweep")
	}
	r, err := WritePath(Params{Runs: 2, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	sync, ok1 := r.SeriesByLabel("filesync ops/s (slow sink)")
	unst, ok2 := r.SeriesByLabel("unstable+commit ops/s (slow sink)")
	fl, ok3 := r.SeriesByLabel("sink flushes per 1k writes")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing series in %+v", r)
	}
	// Largest window: the gather win must be unambiguous.
	last := len(r.X) - 1
	if unst.Samples[last].Mean <= sync.Samples[last].Mean {
		t.Fatalf("unstable+commit %.0f ops/s did not beat filesync %.0f ops/s at window %dms",
			unst.Samples[last].Mean, sync.Samples[last].Mean, r.X[last])
	}
	if fl.Samples[last].Mean >= 500 {
		t.Fatalf("flushes per 1k writes = %.0f at window %dms, want far fewer than writes",
			fl.Samples[last].Mean, r.X[last])
	}
	// Window 0 is write-through: exactly one flush per write.
	if got := fl.Samples[0].Mean; got != 1000 {
		t.Fatalf("flushes per 1k writes = %.0f at window 0, want 1000", got)
	}
	for _, c := range Verify(r) {
		if !c.OK {
			// The hotspot coalescing ratio compares wall-clock against
			// the gather window; under the race detector's ~10x
			// slowdown the window expires mid-workload, which is the
			// honest behaviour of a too-slow client, not a defect.
			if raceEnabled && c.Claim == "overlapping rewrites coalesce inside the window (flushed << gathered)" {
				t.Logf("skipping timing-sensitive check under -race: %s (%s)", c.Claim, c.Got)
				continue
			}
			t.Errorf("shape check failed: %s (%s)", c.Claim, c.Got)
		}
	}
}
