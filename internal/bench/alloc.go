package bench

import (
	"fmt"
	"runtime"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/stats"
)

// allocSizes are the READ/WRITE transfer sizes profiled (bytes).
var allocSizes = []int{512, 8192, 32768}

// allocOpsPerSample is how many RPCs one allocator sample averages
// over.
const allocOpsPerSample = 512

// allocMeasure runs op repeatedly and returns the mean allocator cost
// per operation — objects allocated and bytes allocated — across the
// whole process: client marshalling, both transport endpoints, and the
// server. Go's allocation counters are exact and monotonic, so the
// delta over a quiesced loop is the true per-request allocator traffic,
// which is precisely the hidden data-touching overhead the paper warns
// benchmarks not to bury.
func allocMeasure(ops int, op func() error) (allocsPerOp, bytesPerOp float64, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < ops; i++ {
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops), nil
}

// allocProfileEnv is one live loopback server + TCP client pair.
type allocProfileEnv struct {
	fs  *memfs.FS
	srv *rpcnet.Server
	c   *memfs.Client
	rc  *rpcnet.Client
	fh  nfsproto.FH
}

func newAllocProfileEnv() (*allocProfileEnv, error) {
	fs := memfs.NewFS()
	payload := make([]byte, nfsproto.MaxData)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	fs.Create(memfs.RootFH, "data", payload)
	svc := memfs.NewService(fs, nil, nil)
	srv, err := memfs.NewServer("127.0.0.1:0", svc)
	if err != nil {
		return nil, err
	}
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		return nil, err
	}
	rc, err := rpcnet.Dial("tcp", srv.Addr(), nfsproto.Program, nfsproto.Version3)
	if err != nil {
		c.Close()
		srv.Close()
		return nil, err
	}
	fh, _, err := c.Lookup(memfs.RootFH, "data")
	if err != nil {
		rc.Close()
		c.Close()
		srv.Close()
		return nil, err
	}
	return &allocProfileEnv{fs: fs, srv: srv, c: c, rc: rc, fh: fh}, nil
}

func (e *allocProfileEnv) close() {
	e.rc.Close()
	e.c.Close()
	e.srv.Close()
}

// AllocProfile measures allocator traffic per live RPC — allocs/op and
// B/op, end to end over loopback TCP — for READ and WRITE at several
// transfer sizes, with the fixed-size procedures reported in the notes.
// This is the repository's instrument against the paper's central trap:
// when per-request allocation and copying dominate, a "server
// throughput" benchmark is really measuring the harness. The READ reply
// pipeline is pooled and append-marshalled (one payload copy between
// storage and socket), so B/op should sit near the one client-side
// reply copy rather than at a multiple of the transfer size.
func AllocProfile(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "alloc-profile", Title: "Allocator traffic per live RPC (loopback TCP)",
		XLabel: "bytes", YLabel: "allocs/op and KB/op",
		X: allocSizes,
	}
	type metric struct {
		label  string
		sample func(env *allocProfileEnv, size int) (float64, float64, error)
	}
	read := func(env *allocProfileEnv, size int) (float64, float64, error) {
		return allocMeasure(allocOpsPerSample, func() error {
			_, _, err := env.c.Read(env.fh, 0, uint32(size))
			return err
		})
	}
	write := func(env *allocProfileEnv, size int) (float64, float64, error) {
		block := make([]byte, size)
		var off uint64
		return allocMeasure(allocOpsPerSample, func() error {
			// Appends, so the store's copy-on-write arm (whole-segment
			// copy on overlap) does not drown the wire-path signal.
			err := env.c.Write(env.fh, uint64(nfsproto.MaxData)+off, block)
			off += uint64(size)
			return err
		})
	}
	for _, m := range []metric{{"READ", read}, {"WRITE", write}} {
		allocsSeries := Series{Label: m.label + " allocs/op", Better: BetterLower}
		bytesSeries := Series{Label: m.label + " KB/op", Better: BetterLower}
		for _, size := range allocSizes {
			var allocsRuns, bytesRuns []float64
			for run := 0; run < p.Runs; run++ {
				env, err := newAllocProfileEnv()
				if err != nil {
					return nil, fmt.Errorf("alloc-profile: %w", err)
				}
				a, b, err := m.sample(env, size)
				env.close()
				if err != nil {
					return nil, fmt.Errorf("alloc-profile %s size=%d: %w", m.label, size, err)
				}
				allocsRuns = append(allocsRuns, a)
				bytesRuns = append(bytesRuns, b/1024)
			}
			allocsSeries.Samples = append(allocsSeries.Samples, stats.Summarize(allocsRuns))
			bytesSeries.Samples = append(bytesSeries.Samples, stats.Summarize(bytesRuns))
		}
		r.Series = append(r.Series, allocsSeries, bytesSeries)
	}

	// Fixed-size procedures, one line each in the notes.
	env, err := newAllocProfileEnv()
	if err != nil {
		return nil, fmt.Errorf("alloc-profile: %w", err)
	}
	defer env.close()
	for _, fixed := range []struct {
		name string
		op   func() error
	}{
		{"NULL", func() error {
			_, err := env.rc.Call(nfsproto.ProcNull, nil)
			return err
		}},
		{"GETATTR", func() error {
			_, err := env.rc.Call(nfsproto.ProcGetattr,
				(&nfsproto.GetattrArgs{FH: env.fh}).Marshal())
			return err
		}},
		{"LOOKUP", func() error {
			_, _, err := env.c.Lookup(memfs.RootFH, "data")
			return err
		}},
	} {
		a, b, err := allocMeasure(allocOpsPerSample, fixed.op)
		if err != nil {
			return nil, fmt.Errorf("alloc-profile %s: %w", fixed.name, err)
		}
		r.Notes = append(r.Notes,
			fmt.Sprintf("%s: %.1f allocs/op, %.0f B/op", fixed.name, a, b))
	}
	r.Notes = append(r.Notes,
		"whole-process allocator deltas (client+server share the process); READ B/op ≈ one reply-body copy",
		"WRITE uses appends; overlapping writes add a copy-on-write segment copy by design")
	return r, nil
}
