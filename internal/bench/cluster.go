package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nfstricks/internal/cluster"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/replay"
	"nfstricks/internal/stats"
	"nfstricks/internal/tracefile"
)

// clusterShardCounts is the X axis: how many nfsd shards serve the
// namespace.
var clusterShardCounts = []int{1, 2, 4, 8}

const (
	// clusterAmpLow/High are the trace amplification factors: the
	// captured 4-stream workload replayed as that many independent
	// tenants, open-loop.
	clusterAmpLow  = 4
	clusterAmpHigh = 16
	// clusterKneeGain is the marginal speedup below which a shard
	// doubling is declared to have hit the coordination knee.
	clusterKneeGain = 1.15
	// clusterUDPWindow caps per-stream inflight for the UDP cells;
	// loopback datagram buffers overflow long before TCP backpressure
	// would kick in.
	clusterUDPWindow = 8
	// clusterChurnShards is the shard count the drain-under-load cell
	// runs at.
	clusterChurnShards = 4
)

// clusterEnv is one cell's serving side: an n-shard cluster, routed
// clients for both transports, and a per-tenant namespace mirroring
// the captured workload's files.
type clusterEnv struct {
	c     *cluster.Cluster
	tcp   *cluster.Client
	udp   *cluster.Client
	mapFH func(tenant int, fh uint64) nfsproto.FH
}

// newClusterEnv stands up the cluster and creates, for each of
// `tenants` tenants, one file per captured stream sized to cover the
// captured reads. The returned mapFH sends each (tenant, captured
// handle) pair to that tenant's copy, so amplified replay reads
// distinct handles that the ring spreads across shards.
func newClusterEnv(shards, tenants, perStream int) (*clusterEnv, error) {
	c, err := cluster.New(cluster.Config{Shards: shards})
	if err != nil {
		return nil, err
	}
	env := &clusterEnv{c: c}
	if env.tcp, err = cluster.DialClient("tcp", c.CtrlAddr(), cluster.ClientConfig{}); err != nil {
		c.Close()
		return nil, err
	}
	if env.udp, err = cluster.DialClient("udp", c.CtrlAddr(), cluster.ClientConfig{}); err != nil {
		env.Close()
		return nil, err
	}
	// The capture store assigns handles deterministically (payload size
	// does not affect allocation), so rebuilding a unit-sized twin
	// recovers the handles the trace records carry.
	_, srcFHs := traceReplayEnv(1)
	perTenant := make([]map[uint64]nfsproto.FH, tenants)
	for t := 0; t < tenants; t++ {
		perTenant[t] = make(map[uint64]nfsproto.FH, len(srcFHs))
		for i, src := range srcFHs {
			fh, err := env.tcp.Create(fmt.Sprintf("t%d_s%d", t, i), uint64(perStream))
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("create tenant %d stream %d: %w", t, i, err)
			}
			perTenant[t][uint64(src)] = fh
		}
	}
	env.mapFH = func(tenant int, fh uint64) nfsproto.FH {
		if mapped, ok := perTenant[tenant][fh]; ok {
			return mapped
		}
		return nfsproto.FH(fh)
	}
	return env, nil
}

func (e *clusterEnv) Close() {
	if e.udp != nil {
		e.udp.Close()
	}
	if e.tcp != nil {
		e.tcp.Close()
	}
	e.c.Close()
}

// clusterReplayOpts builds the open-loop amplified replay options for
// one cell. The shard-aware client is the transport: it routes each
// call by handle and chases redirects, so the replay engine never sees
// the topology.
func (e *clusterEnv) clusterReplayOpts(network string, amp int) replay.Options {
	opts := replay.Options{
		// Addr is unused with a custom Dial but required by the
		// options contract; the control plane address documents intent.
		Network: network, Addr: e.c.CtrlAddr(),
		Timing: replay.AsFast, OpenLoop: true,
		Amplify: amp, TenantFH: e.mapFH,
	}
	if network == "udp" {
		opts.Dial = e.udp.ReplayDial
		opts.Window = clusterUDPWindow
	} else {
		opts.Dial = e.tcp.ReplayDial
	}
	return opts
}

// clusterBalance renders per-shard executed counts from the merged
// labeled snapshot — the same numbers an admin endpoint would scrape,
// proving the label merge end-to-end.
func clusterBalance(env *clusterEnv) string {
	snap := env.c.MergedSnapshot()
	perShard := make(map[string]int64)
	for name, v := range snap.Counters {
		base, labels, _ := strings.Cut(name, "{")
		if base != "nfsd_executed_total" {
			continue
		}
		// The counter may carry other labels (proc=...); pick out the
		// shard value the merge spliced in and sum across the rest.
		if _, rest, ok := strings.Cut(labels, `shard="`); ok {
			if id, _, ok := strings.Cut(rest, `"`); ok {
				perShard[id] += v
			}
		}
	}
	parts := make([]string, 0, len(perShard))
	for id, v := range perShard {
		parts = append(parts, fmt.Sprintf("%s=%d", id, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// ClusterScale is the scale-out experiment: the captured multi-stream
// workload, amplified to M independent tenants at open-loop speed,
// replayed against {1,2,4,8} in-process nfsd shards behind the
// consistent-hash map. It reports ops/s and p99 per shard count for
// both amplification factors and both transports, merges the per-shard
// obs registries into the report, and hunts the negative result the
// paper trains us to expect: the shard doubling where map coordination
// (redirect chasing, refresh round-trips, migration copies) eats the
// speedup. One extra cell drains a shard mid-replay; its bar is zero
// failed operations — stale clients must be redirected and retried,
// never errored.
func ClusterScale(p Params) (*Result, error) {
	p.fill()
	perStream := traceReplayBytes / p.Scale
	if perStream < 64*1024 {
		perStream = 64 * 1024
	}
	r := &Result{
		ID: "cluster-scale", Title: "Scale-out: shard count vs amplified open-loop replay",
		XLabel: "shards", YLabel: "ops/s, p99 latency (µs)",
		X: clusterShardCounts,
	}

	type cellKey struct {
		shards int
		label  string
	}
	cells := make(map[cellKey][]float64)
	add := func(n int, label string, v float64) {
		k := cellKey{n, label}
		cells[k] = append(cells[k], v)
	}
	labels := []struct {
		name   string
		better string
	}{
		{fmt.Sprintf("ops/s tcp amp=%d", clusterAmpLow), BetterHigher},
		{fmt.Sprintf("ops/s tcp amp=%d", clusterAmpHigh), BetterHigher},
		{fmt.Sprintf("ops/s udp amp=%d", clusterAmpLow), BetterHigher},
		{fmt.Sprintf("p99 µs tcp amp=%d", clusterAmpHigh), BetterLower},
	}

	var udpErrs, udpOps int64
	var churnRedirects, churnRefreshes, churnMigrated int64
	var churnRuns int
	balance := ""
	for run := 0; run < p.Runs; run++ {
		recs, _, err := captureWorkload(perStream)
		if err != nil {
			return nil, fmt.Errorf("cluster-scale capture: %w", err)
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("cluster-scale: empty capture")
		}
		for _, n := range clusterShardCounts {
			env, err := newClusterEnv(n, clusterAmpHigh, perStream)
			if err != nil {
				return nil, fmt.Errorf("cluster-scale shards=%d: %w", n, err)
			}
			for _, cell := range []struct {
				network string
				amp     int
			}{
				{"tcp", clusterAmpLow}, {"tcp", clusterAmpHigh}, {"udp", clusterAmpLow},
			} {
				st, err := replay.Run(recs, env.clusterReplayOpts(cell.network, cell.amp))
				if err != nil {
					env.Close()
					return nil, fmt.Errorf("cluster-scale shards=%d %s amp=%d: %w", n, cell.network, cell.amp, err)
				}
				if cell.network == "udp" {
					// Datagrams are allowed to drop (that is the trap the
					// transport axis exists to show) but not wholesale.
					udpErrs += st.Errors
					udpOps += st.Ops
					if st.Errors*100 > st.Ops {
						env.Close()
						return nil, fmt.Errorf("cluster-scale shards=%d udp: %d/%d ops lost", n, st.Errors, st.Ops)
					}
				} else if st.Errors > 0 || st.NFSErrors > 0 {
					env.Close()
					return nil, fmt.Errorf("cluster-scale shards=%d %s amp=%d: %d transport / %d NFS errors",
						n, cell.network, cell.amp, st.Errors, st.NFSErrors)
				}
				add(n, fmt.Sprintf("ops/s %s amp=%d", cell.network, cell.amp), st.OpsPerSec)
				if cell.network == "tcp" && cell.amp == clusterAmpHigh {
					add(n, fmt.Sprintf("p99 µs tcp amp=%d", clusterAmpHigh), float64(st.P99.Microseconds()))
				}
			}
			if n == clusterChurnShards {
				balance = clusterBalance(env)
				red, ref, mig, err := clusterChurn(env, recs)
				if err != nil {
					env.Close()
					return nil, err
				}
				churnRedirects += red
				churnRefreshes += ref
				churnMigrated += mig
				churnRuns++
			}
			env.Close()
		}
	}

	for _, l := range labels {
		s := Series{Label: l.name, Better: l.better}
		for _, n := range clusterShardCounts {
			s.Samples = append(s.Samples, stats.Summarize(cells[cellKey{n, l.name}]))
		}
		r.Series = append(r.Series, s)
	}

	// The headline and the negative result, from the high-pressure TCP
	// series: speedup at each doubling, and the first doubling whose
	// marginal gain falls under the knee threshold.
	highLabel := fmt.Sprintf("ops/s tcp amp=%d", clusterAmpHigh)
	mean := func(n int) float64 { return stats.Summarize(cells[cellKey{n, highLabel}]).Mean }
	if base := mean(clusterShardCounts[0]); base > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"amp=%d tcp speedup vs 1 shard: 2→%.2f×, 4→%.2f×, 8→%.2f×",
			clusterAmpHigh, mean(2)/base, mean(4)/base, mean(8)/base))
		knee := ""
		for i := 1; i < len(clusterShardCounts); i++ {
			prev, cur := mean(clusterShardCounts[i-1]), mean(clusterShardCounts[i])
			if prev > 0 && cur/prev < clusterKneeGain {
				knee = fmt.Sprintf(
					"coordination knee at %d→%d shards: marginal gain %.2f× (< %.2f×) — map refresh, redirect chasing and per-shard sockets stop paying for themselves",
					clusterShardCounts[i-1], clusterShardCounts[i], cur/prev, clusterKneeGain)
				break
			}
		}
		if knee == "" {
			knee = fmt.Sprintf("no coordination knee up to %d shards (every doubling gained ≥%.2f×) at this scale — rerun at lower -scale to find it",
				clusterShardCounts[len(clusterShardCounts)-1], clusterKneeGain)
		}
		r.Notes = append(r.Notes, knee)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("per-shard executed at %d shards (merged shard-labeled registries): %s", clusterChurnShards, balance),
		fmt.Sprintf("drain mid-replay (%d shards, faithful timing, %d runs): 0 failed ops; %d redirects, %d map refreshes, %d files migrated",
			clusterChurnShards, churnRuns, churnRedirects, churnRefreshes, churnMigrated),
		fmt.Sprintf("udp cells: %d/%d datagrams lost (open-loop window %d)", udpErrs, udpOps, clusterUDPWindow))
	return r, nil
}

// clusterChurn replays the trace at faithful timing while draining one
// shard a third of the way through the captured span. Zero failed
// operations is the acceptance bar: every request issued against the
// stale map must come back as a redirect the client chases, not an
// error. Returns the redirect / refresh / migration counts the drain
// cost the run.
func clusterChurn(env *clusterEnv, recs []tracefile.Record) (redirects, refreshes, migrated int64, err error) {
	before := env.tcp.Stats()
	target := env.c.Map().Shards[0].ID
	span := traceSpan(recs)
	if span <= 0 {
		span = 10 * time.Millisecond
	}
	var drainErr atomic.Value
	timer := time.AfterFunc(span/3, func() {
		if _, err := env.tcp.Drain(target); err != nil {
			drainErr.Store(err)
		}
	})
	opts := env.clusterReplayOpts("tcp", clusterAmpHigh)
	opts.Timing = replay.Faithful
	st, err := replay.Run(recs, opts)
	timer.Stop()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("cluster-scale churn: %w", err)
	}
	if e, _ := drainErr.Load().(error); e != nil {
		return 0, 0, 0, fmt.Errorf("cluster-scale churn drain: %w", e)
	}
	if st.Errors > 0 || st.NFSErrors > 0 {
		return 0, 0, 0, fmt.Errorf("cluster-scale churn: %d transport / %d NFS errors during drain (want 0)",
			st.Errors, st.NFSErrors)
	}
	after := env.tcp.Stats()
	snap := env.c.MergedSnapshot()
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "cluster_migrated_out_total{") {
			migrated += v
		}
	}
	return after.Redirects - before.Redirects, after.MapRefreshes - before.MapRefreshes, migrated, nil
}
