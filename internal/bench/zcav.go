package bench

import (
	"fmt"
	"strings"
	"time"

	"nfstricks/internal/disk"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/obs"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/stats"
	"nfstricks/internal/zonefs"
)

// zcavXferKB is the transfer-size sweep (the client's rsize).
var zcavXferKB = []int{8, 32}

// zcavFileMB is the working-set size at Scale 1.
const zcavFileMB = 16

// zcavColdCacheMB starves the buffer cache: the working set never
// fits, so every pass over the file pays the disk (an LRU cache
// scanned sequentially evicts each block just before its next use).
const zcavColdCacheMB = 1

// zcavWarmCacheMB holds the whole working set after one priming pass.
const zcavWarmCacheMB = 64

// zcavWarmMeasureBytes is the minimum bytes a warm measurement covers;
// warm reads run at memory speed, so one small file pass would be too
// short a window to time honestly.
const zcavWarmMeasureBytes = 64 << 20

// zcavCell runs one live READ throughput measurement: a zonefs store
// with the given placement and cache size, served over real TCP
// loopback through the nfsd dispatch layer, primed with one full
// sequential pass, then timed over at least one further pass. With reg
// non-nil the server records per-request stage spans — in particular
// the simulated disk service time zonefs sleeps out, which the cold
// cells' attribution note reports.
func zcavCell(placement zonefs.Placement, cacheMB, xferKB int, run int, p Params, reg *obs.Registry) (float64, error) {
	fileBytes := int64(zcavFileMB<<20) / int64(p.Scale)
	if fileBytes < 2<<20 {
		fileBytes = 2 << 20
	}
	backend := zonefs.New(zonefs.Config{
		Placement: placement,
		CacheMB:   cacheMB,
		Seed:      p.Seed + int64(run),
	})
	payload := make([]byte, fileBytes)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if _, err := backend.Create(memfs.RootFH, "data", payload); err != nil {
		return 0, fmt.Errorf("zcav-live: create failed (region full?)")
	}
	svc := nfsd.New(backend, nfsd.Config{Obs: reg})
	defer svc.Close()
	srv, err := nfsd.NewServerOpts("127.0.0.1:0", svc,
		rpcnet.ServerOptions{Spans: svc.SpanTable()})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		return 0, err
	}
	defer c.Close()

	fh, size, err := c.Lookup(memfs.RootFH, "data")
	if err != nil {
		return 0, err
	}
	xfer := uint32(xferKB << 10)
	pass := func() error {
		for off := uint64(0); off < uint64(size); off += uint64(xfer) {
			if _, _, err := c.Read(fh, off, xfer); err != nil {
				return err
			}
		}
		return nil
	}

	// Priming pass: warms the cache when it fits, and brings the
	// heuristic/drive state to steady state either way.
	if err := pass(); err != nil {
		return 0, err
	}
	passes := 1
	if cacheMB >= zcavWarmCacheMB {
		if n := int(zcavWarmMeasureBytes / fileBytes); n > passes {
			passes = n
		}
	}
	start := time.Now()
	for i := 0; i < passes; i++ {
		if err := pass(); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(fileBytes) * float64(passes) / 1e6 / elapsed.Seconds(), nil
}

// ZCAVLive is the paper's ZCAV and cache-warmth traps measured on the
// live server: files on a simulated zoned drive behind real RPC, zone
// placement (outer vs inner quarter) crossed with buffer cache size
// (a 1 MB cache the working set thrashes vs a 64 MB cache it fits
// in), swept over client transfer sizes.
//
// The shape under test: with a cold cache, outer-zone files read
// measurably faster than inner-zone ones — benchmarking two servers
// whose data merely sits at different disk positions "measures" a
// difference no code change made. With a warm cache both placements
// collapse to memory speed and the gap disappears — and a benchmark
// that does not control cache warmth can report either result.
func ZCAVLive(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "zcav-live", Title: "Live ZCAV trap: zone placement x cache size over real RPC",
		XLabel: "xferKB", YLabel: "READ throughput (MB/s)",
		X: zcavXferKB,
	}
	// One discarded warm cell first: the very first live measurement in
	// a process is depressed by cold TCP buffers, page faults and
	// allocator growth, and would bias whichever series ran first — a
	// benchmarking trap of our own the paper would appreciate.
	if _, err := zcavCell(zonefs.Outer, zcavWarmCacheMB, zcavXferKB[0], 0, p, nil); err != nil {
		return nil, fmt.Errorf("zcav-live warmup: %w", err)
	}
	cells := []struct {
		label   string
		place   zonefs.Placement
		cacheMB int
	}{
		{"outer/cold", zonefs.Outer, zcavColdCacheMB},
		{"inner/cold", zonefs.Inner, zcavColdCacheMB},
		{"outer/warm", zonefs.Outer, zcavWarmCacheMB},
		{"inner/warm", zonefs.Inner, zcavWarmCacheMB},
	}
	// Runs interleave the cells (outer and inner measured back to
	// back within each run) so slow machine drift lands on every
	// series equally instead of skewing whichever ran last — the
	// placement comparison is paired, not sequential.
	samples := make([][][]float64, len(cells))
	for i := range samples {
		samples[i] = make([][]float64, len(zcavXferKB))
	}
	// Per-cell stage spans: the cold cells' breakdown is the experiment's
	// attribution claim made quantitative — the throughput gap is
	// simulated disk time, and the disk stage's share of the request
	// total says exactly how much.
	breakdown := make(map[string]obs.ProcStats)
	for xi, xferKB := range zcavXferKB {
		for run := 0; run < p.Runs; run++ {
			for ci, cell := range cells {
				var stop func()
				if run == 0 {
					stop = p.startCellProfile(fmt.Sprintf("zcav-live_%s_x%dK",
						strings.ReplaceAll(cell.label, "/", "-"), xferKB))
				}
				reg := obs.NewRegistry()
				mbps, err := zcavCell(cell.place, cell.cacheMB, xferKB, run, p, reg)
				if stop != nil {
					stop()
				}
				if err != nil {
					return nil, fmt.Errorf("zcav-live %s xfer=%dK: %w", cell.label, xferKB, err)
				}
				samples[ci][xi] = append(samples[ci][xi], mbps)
				if run == 0 && xi == 0 {
					if ps, ok := reg.Spans("nfsd_op", nil).ProcSummary("READ"); ok {
						breakdown[cell.label] = ps
					}
				}
			}
		}
	}
	for ci, cell := range cells {
		s := Series{Label: cell.label}
		for xi := range zcavXferKB {
			s.Samples = append(s.Samples, stats.Summarize(samples[ci][xi]))
		}
		r.Series = append(r.Series, s)
	}
	// Only the cold cells get the note: their spans are pure
	// cache-missing traffic, and the dominant-stage share Note reports
	// is the attribution claim ("the gap IS simulated seek time"). Warm
	// cells' spans would be polluted by their priming pass.
	for _, cell := range cells {
		ps, ok := breakdown[cell.label]
		if !ok || ps.Count == 0 || cell.cacheMB != zcavColdCacheMB {
			continue
		}
		r.Notes = append(r.Notes, fmt.Sprintf("stage breakdown %s (x=%dK, run 0) READ: %s",
			cell.label, zcavXferKB[0], ps.Note()))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("zonefs on %s, file %d MB/scale; cold = %d MB cache (thrashes), warm = %d MB (fits)",
			disk.WD200BB().Name, zcavFileMB, zcavColdCacheMB, zcavWarmCacheMB),
		"simulated disk service time elapses for real on the RPC path; warm reads never touch it",
		"same protocol stack, same files, same client — only LBA placement and cache warmth differ")
	return r, nil
}
