// Benchmark comparison with variance discipline — the `nfsbench
// compare` engine. Two runs of the same experiment (two saved
// artifacts, or two live executions interleaved round by round) are
// paired cell by cell (experiment, series, X value) and each pair is
// tested the way benchstat does it: medians with bootstrap confidence
// intervals, a Mann-Whitney U test for "is this the same
// distribution?", and a verdict that flags only differences that clear
// run-to-run noise. The paper's complaint is benchmark numbers read
// without error bars; this file is the harness refusing to produce
// them.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"nfstricks/internal/stats"
)

// CompareOptions parameterizes a comparison. The zero value gets
// benchstat-flavored defaults: alpha 0.05, 95% confidence intervals,
// 1000 bootstrap resamples, no minimum-effect floor.
type CompareOptions struct {
	// Alpha is the Mann-Whitney significance level; differences with
	// p >= Alpha are reported as noise.
	Alpha float64
	// Confidence is the bootstrap CI level (0.95 = 95%).
	Confidence float64
	// MinEffectPct ignores median shifts smaller than this percentage
	// even when statistically significant — cross-machine comparisons
	// (CI runners) need an effect floor on top of the noise test.
	MinEffectPct float64
	// Resamples is the bootstrap resample count.
	Resamples int
	// Seed makes the bootstrap deterministic.
	Seed int64
}

func (o CompareOptions) filled() CompareOptions {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.Resamples <= 0 {
		o.Resamples = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// CellKey names one measured cell: an experiment, one of its series,
// and one X value.
type CellKey struct {
	Exp    string `json:"exp"`
	Series string `json:"series"`
	X      int    `json:"x"`
}

func (k CellKey) String() string {
	return fmt.Sprintf("%s/%s x=%d", k.Exp, k.Series, k.X)
}

// CellDelta is the comparison of one cell across the two runs.
type CellDelta struct {
	Key      CellKey
	Old, New stats.Sample
	// OldCI and NewCI are bootstrap confidence intervals for each
	// side's median; ShiftCI is the interval for median(new) −
	// median(old). With raw samples absent on either side (an artifact
	// written before Values existed) the intervals fall back to the
	// normal approximation from mean/stddev and Note says so.
	OldCI, NewCI, ShiftCI [2]float64
	// DeltaPct is the median shift as a percentage of the old median.
	DeltaPct float64
	// P is the Mann-Whitney two-sided p-value (NaN in fallback mode —
	// rank tests need the raw runs).
	P float64
	// LowerIsBetter is the direction used for the verdict.
	LowerIsBetter bool
	// Significant: the difference clears the noise (p < alpha AND the
	// shift CI excludes zero AND |DeltaPct| >= MinEffectPct).
	Significant bool
	// Regression and Improvement orient a significant difference.
	Regression  bool
	Improvement bool
	Note        string
}

// Comparison is the full result of comparing two runs.
type Comparison struct {
	Opt              CompareOptions
	OldMeta, NewMeta RunMeta
	Cells            []CellDelta
	// Unpaired lists cells present on only one side (new experiments,
	// renamed series, different sweeps) — reported, never gated on.
	Unpaired []string
}

// CompareArtifacts pairs every cell of old and new by (experiment,
// series label, X value) and tests each pair.
func CompareArtifacts(old, new *Artifact, opt CompareOptions) *Comparison {
	opt = opt.filled()
	c := &Comparison{Opt: opt, OldMeta: old.Meta, NewMeta: new.Meta}
	seenNew := map[CellKey]bool{}
	for _, ro := range old.Results {
		rn, ok := new.ResultByID(ro.ID)
		if !ok {
			c.Unpaired = append(c.Unpaired, fmt.Sprintf("%s (old only)", ro.ID))
			continue
		}
		for si := range ro.Series {
			so := &ro.Series[si]
			sn, ok := rn.SeriesByLabel(so.Label)
			if !ok {
				c.Unpaired = append(c.Unpaired,
					fmt.Sprintf("%s/%s (old only)", ro.ID, so.Label))
				continue
			}
			newX := map[int]int{}
			for xi, x := range rn.X {
				newX[x] = xi
			}
			for xi, x := range ro.X {
				key := CellKey{Exp: ro.ID, Series: so.Label, X: x}
				nxi, ok := newX[x]
				if !ok || xi >= len(so.Samples) || nxi >= len(sn.Samples) {
					c.Unpaired = append(c.Unpaired, key.String()+" (old only)")
					continue
				}
				seenNew[key] = true
				c.Cells = append(c.Cells,
					compareCell(key, so.Samples[xi], sn.Samples[nxi], so.LowerIsBetter(), opt))
			}
		}
	}
	// Anything in new that never paired.
	for _, rn := range new.Results {
		ro, ok := old.ResultByID(rn.ID)
		if !ok {
			c.Unpaired = append(c.Unpaired, fmt.Sprintf("%s (new only)", rn.ID))
			continue
		}
		for si := range rn.Series {
			sn := &rn.Series[si]
			if _, ok := ro.SeriesByLabel(sn.Label); !ok {
				c.Unpaired = append(c.Unpaired,
					fmt.Sprintf("%s/%s (new only)", rn.ID, sn.Label))
				continue
			}
			for xi, x := range rn.X {
				key := CellKey{Exp: rn.ID, Series: sn.Label, X: x}
				if !seenNew[key] && xi < len(sn.Samples) {
					c.Unpaired = append(c.Unpaired, key.String()+" (new only)")
				}
			}
		}
	}
	return c
}

// compareCell tests one paired cell. With raw runs on both sides it is
// the real thing: Mann-Whitney on the runs, bootstrap CI on the median
// shift. With raw runs missing on either side (old artifacts) it falls
// back to a normal approximation from the summary stats — still an
// interval, honestly labeled.
func compareCell(key CellKey, a, b stats.Sample, lower bool, opt CompareOptions) CellDelta {
	d := CellDelta{Key: key, Old: a, New: b, LowerIsBetter: lower, P: math.NaN()}

	haveRaw := len(a.Values) > 0 && len(b.Values) > 0
	var oldCenter, newCenter float64
	if haveRaw {
		oldCenter, newCenter = stats.Median(a.Values), stats.Median(b.Values)
		d.OldCI[0], d.OldCI[1] = stats.BootstrapMedianCI(a.Values, opt.Resamples, opt.Confidence, opt.Seed)
		d.NewCI[0], d.NewCI[1] = stats.BootstrapMedianCI(b.Values, opt.Resamples, opt.Confidence, opt.Seed)
		d.ShiftCI[0], d.ShiftCI[1] = stats.BootstrapShiftCI(a.Values, b.Values, opt.Resamples, opt.Confidence, opt.Seed)
		_, d.P = stats.MannWhitney(a.Values, b.Values)
	} else {
		// Normal-approximation fallback: center on the median when the
		// artifact recorded one, else the mean; the interval half-width
		// is z·s/√n per side and the shift interval is Welch-style.
		oldCenter, newCenter = a.Median, b.Median
		if oldCenter == 0 {
			oldCenter = a.Mean
		}
		if newCenter == 0 {
			newCenter = b.Mean
		}
		z := zQuantile(opt.Confidence)
		seA, seB := normalSE(a), normalSE(b)
		d.OldCI = [2]float64{oldCenter - z*seA, oldCenter + z*seA}
		d.NewCI = [2]float64{newCenter - z*seB, newCenter + z*seB}
		shift := newCenter - oldCenter
		seShift := math.Sqrt(seA*seA + seB*seB)
		d.ShiftCI = [2]float64{shift - z*seShift, shift + z*seShift}
		d.Note = "no raw samples on one side; normal-approximation fallback"
	}

	if oldCenter != 0 {
		d.DeltaPct = (newCenter - oldCenter) / math.Abs(oldCenter) * 100
	}
	ciExcludesZero := d.ShiftCI[0] > 0 || d.ShiftCI[1] < 0
	pSignificant := !haveRaw || d.P < opt.Alpha // fallback mode has no p; CI carries the test
	d.Significant = pSignificant && ciExcludesZero &&
		math.Abs(d.DeltaPct) >= opt.MinEffectPct
	if d.Significant {
		worse := d.DeltaPct < 0
		if lower {
			worse = d.DeltaPct > 0
		}
		d.Regression = worse
		d.Improvement = !worse
	}
	return d
}

// normalSE is the standard error of the mean from summary stats.
func normalSE(s stats.Sample) float64 {
	if s.N <= 1 {
		return 0
	}
	return s.StdDev / math.Sqrt(float64(s.N))
}

// zQuantile returns the two-sided normal quantile for the given
// confidence level via bisection on erfc (no tables, no deps).
func zQuantile(conf float64) float64 {
	// Find z with erfc(z/√2) = 1-conf.
	target := 1 - conf
	lo, hi := 0.0, 10.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if math.Erfc(mid/math.Sqrt2) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Regressions returns the cells whose significant difference goes the
// wrong way, the list the gate fails on.
func (c *Comparison) Regressions() []CellDelta {
	var out []CellDelta
	for _, d := range c.Cells {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Improvements returns the cells that got significantly better.
func (c *Comparison) Improvements() []CellDelta {
	var out []CellDelta
	for _, d := range c.Cells {
		if d.Improvement {
			out = append(out, d)
		}
	}
	return out
}

// metaLine renders one side's provenance for the report header.
func metaLine(m RunMeta) string {
	rev := m.GitRev
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "unknown-rev"
	}
	if m.GitDirty {
		rev += "+dirty"
	}
	host := m.Hostname
	if host == "" {
		host = "unknown-host"
	}
	return fmt.Sprintf("%s on %s at %s (runs=%d scale=%d seed=%d)",
		rev, host, m.Timestamp, m.Runs, m.Scale, m.Seed)
}

// ci formats an interval compactly.
func ci(iv [2]float64) string {
	return fmt.Sprintf("[%.3g, %.3g]", iv[0], iv[1])
}

// Format renders the full plain-text comparison report: provenance,
// per-cell medians with confidence intervals, and a verdict column
// that only ever says something when the difference clears noise.
func (c *Comparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compare: old = %s\n", metaLine(c.OldMeta))
	fmt.Fprintf(&b, "         new = %s\n", metaLine(c.NewMeta))
	fmt.Fprintf(&b, "alpha=%g confidence=%g%% min-effect=%g%% resamples=%d\n",
		c.Opt.Alpha, c.Opt.Confidence*100, c.Opt.MinEffectPct, c.Opt.Resamples)
	if c.OldMeta.Hostname != "" && c.NewMeta.Hostname != "" &&
		c.OldMeta.Hostname != c.NewMeta.Hostname {
		fmt.Fprintf(&b, "warning: runs come from different hosts — absolute medians are not comparable machines; interpret with care\n")
	}
	b.WriteByte('\n')

	lastExp := ""
	for _, d := range c.Cells {
		if d.Key.Exp != lastExp {
			if lastExp != "" {
				b.WriteByte('\n')
			}
			lastExp = d.Key.Exp
			fmt.Fprintf(&b, "%s:\n", d.Key.Exp)
			fmt.Fprintf(&b, "  %-34s %6s  %22s  %22s  %18s  %8s  %s\n",
				"series", "x", "old median "+fmt.Sprintf("%g%% CI", c.Opt.Confidence*100),
				"new median CI", "delta", "p", "")
		}
		verdict := ""
		switch {
		case d.Regression:
			verdict = "REGRESSION"
		case d.Improvement:
			verdict = "improvement"
		}
		delta := "~"
		if d.Significant {
			delta = fmt.Sprintf("%+.1f%%", d.DeltaPct)
		}
		p := "-"
		if !math.IsNaN(d.P) {
			p = fmt.Sprintf("%.3f", d.P)
		}
		oldMed, newMed := d.Old.Median, d.New.Median
		if oldMed == 0 {
			oldMed = d.Old.Mean
		}
		if newMed == 0 {
			newMed = d.New.Mean
		}
		fmt.Fprintf(&b, "  %-34s %6d  %9.4g %-12s  %9.4g %-12s  %18s  %8s  %s\n",
			d.Key.Series, d.Key.X,
			oldMed, ci(d.OldCI), newMed, ci(d.NewCI), delta, p, verdict)
		if d.Note != "" {
			fmt.Fprintf(&b, "    note: %s\n", d.Note)
		}
	}
	if len(c.Unpaired) > 0 {
		fmt.Fprintf(&b, "\nunpaired cells (not compared):\n")
		for _, u := range c.Unpaired {
			fmt.Fprintf(&b, "  %s\n", u)
		}
	}
	b.WriteByte('\n')
	b.WriteString(c.GateSummary())
	return b.String()
}

// GateSummary renders the verdict paragraph the gate prints: PASS, or
// FAIL with every regressing cell named with its delta and interval.
func (c *Comparison) GateSummary() string {
	regs := c.Regressions()
	var b strings.Builder
	if len(regs) == 0 {
		imps := len(c.Improvements())
		fmt.Fprintf(&b, "gate: PASS — %d cells compared, 0 regressions beyond noise (%d improvements)\n",
			len(c.Cells), imps)
		return b.String()
	}
	fmt.Fprintf(&b, "gate: FAIL — %d of %d cells regressed beyond noise:\n", len(regs), len(c.Cells))
	if c.Opt.MinEffectPct == 0 {
		// Per-cell alpha with no effect floor means a wide sweep WILL
		// flag spurious cells at roughly alpha/2 per cell — that is what
		// alpha means. Say so next to the verdict instead of letting a
		// small-delta flag masquerade as a finding.
		fmt.Fprintf(&b, "  (no -min-effect floor: across %d cells expect ~%.1f spurious flags per direction at alpha=%g; small deltas below your noise floor may be chance)\n",
			len(c.Cells), float64(len(c.Cells))*c.Opt.Alpha/2, c.Opt.Alpha)
	}
	for _, d := range regs {
		p := ""
		if !math.IsNaN(d.P) {
			p = fmt.Sprintf(", p=%.3f", d.P)
		}
		oldMed, newMed := d.Old.Median, d.New.Median
		if oldMed == 0 {
			oldMed = d.Old.Mean
		}
		if newMed == 0 {
			newMed = d.New.Mean
		}
		fmt.Fprintf(&b, "  %s: median %.4g -> %.4g (%+.1f%%, shift CI %s%s)\n",
			d.Key, oldMed, newMed, d.DeltaPct, ci(d.ShiftCI), p)
	}
	return b.String()
}

// LoadArtifact reads an nfsbench -json artifact from disk.
func LoadArtifact(path string) (*Artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(blob, &a); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(a.Results) == 0 {
		return nil, fmt.Errorf("%s: artifact has no results", path)
	}
	return &a, nil
}

// RoundRunner produces one single-repetition Result for round r —
// the unit of interleaved A/B execution.
type RoundRunner func(round int) (*Result, error)

// InProcessRunner executes the experiment in this process, one
// repetition per round, seeding round r with baseSeed+r.
func InProcessRunner(e Experiment, p Params, baseSeed int64) RoundRunner {
	return func(round int) (*Result, error) {
		rp := p
		rp.Runs = 1
		rp.Seed = baseSeed + int64(round)
		rp.ProfileDir = "" // profiles would serialize the interleave
		return e.Run(rp)
	}
}

// BinaryRunner executes a prebuilt nfsbench binary (typically built
// from another git ref) for one repetition per round, reading the
// result back through a JSON artifact. This is how `compare` runs an
// experiment "across two refs": build each ref's nfsbench, then
// interleave single-run invocations of the two binaries. Older
// binaries whose artifacts lack raw Values still merge (a single-run
// sample's mean IS its one value).
func BinaryRunner(bin, expID string, p Params, baseSeed int64) RoundRunner {
	return func(round int) (*Result, error) {
		dir, err := os.MkdirTemp("", "nfsbench-compare-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		out := filepath.Join(dir, "round.json")
		cmd := exec.Command(bin,
			"-exp", expID,
			"-runs", "1",
			"-scale", strconv.Itoa(p.Scale),
			"-seed", strconv.FormatInt(baseSeed+int64(round), 10),
			"-json", out)
		if msg, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("%s round %d: %w\n%s", bin, round, err, msg)
		}
		a, err := LoadArtifact(out)
		if err != nil {
			return nil, err
		}
		r, ok := a.ResultByID(expID)
		if !ok {
			return nil, fmt.Errorf("%s round %d: artifact lacks result %q", bin, round, expID)
		}
		return r, nil
	}
}

// RunInterleaved executes `rounds` repetitions of A and B back to
// back, alternating which side goes first each round, and returns the
// merged per-side results. Interleaving is the point: slow machine
// drift (thermal throttling, background load) lands on both sides of
// the comparison instead of on whichever ran last — the discipline the
// zcav-live cells apply within one experiment, promoted to the
// cross-run comparison itself.
func RunInterleaved(a, b RoundRunner, rounds int) (*Result, *Result, error) {
	if rounds <= 0 {
		rounds = 5
	}
	var accA, accB *Result
	for round := 0; round < rounds; round++ {
		first, second := a, b
		firstAcc, secondAcc := &accA, &accB
		if round%2 == 1 {
			first, second = b, a
			firstAcc, secondAcc = &accB, &accA
		}
		r1, err := first(round)
		if err != nil {
			return nil, nil, fmt.Errorf("round %d: %w", round, err)
		}
		if *firstAcc, err = mergeRound(*firstAcc, r1); err != nil {
			return nil, nil, fmt.Errorf("round %d: %w", round, err)
		}
		r2, err := second(round)
		if err != nil {
			return nil, nil, fmt.Errorf("round %d: %w", round, err)
		}
		if *secondAcc, err = mergeRound(*secondAcc, r2); err != nil {
			return nil, nil, fmt.Errorf("round %d: %w", round, err)
		}
	}
	finalizeMerged(accA)
	finalizeMerged(accB)
	return accA, accB, nil
}

// mergeRound folds one round's single-run result into the
// accumulator: per-cell raw values concatenate in round order. The
// result structure (X sweep, series labels) must match across rounds —
// it is the same experiment at the same scale.
func mergeRound(acc, next *Result) (*Result, error) {
	if acc == nil {
		// Deep-copy so later rounds can't alias the first result.
		cp := *next
		cp.Series = make([]Series, len(next.Series))
		for i, s := range next.Series {
			cs := s
			cs.Samples = make([]stats.Sample, len(s.Samples))
			for j, sm := range s.Samples {
				sm.Values = roundValues(sm)
				cs.Samples[j] = sm
			}
			cp.Series[i] = cs
		}
		cp.X = append([]int(nil), next.X...)
		cp.Notes = append([]string(nil), next.Notes...)
		return &cp, nil
	}
	if acc.ID != next.ID {
		return nil, fmt.Errorf("merge: result id %q vs %q", acc.ID, next.ID)
	}
	if len(acc.Series) != len(next.Series) {
		return nil, fmt.Errorf("merge %s: series count %d vs %d", acc.ID, len(acc.Series), len(next.Series))
	}
	for i := range next.Series {
		sa, sn := &acc.Series[i], &next.Series[i]
		if sa.Label != sn.Label {
			return nil, fmt.Errorf("merge %s: series %q vs %q", acc.ID, sa.Label, sn.Label)
		}
		if len(sa.Samples) != len(sn.Samples) {
			return nil, fmt.Errorf("merge %s/%s: %d vs %d cells", acc.ID, sa.Label, len(sa.Samples), len(sn.Samples))
		}
		for j := range sn.Samples {
			sa.Samples[j].Values = append(sa.Samples[j].Values, roundValues(sn.Samples[j])...)
		}
	}
	return acc, nil
}

// roundValues extracts a round's raw values; a single-run sample
// without recorded Values (an older binary across the exec boundary)
// contributes its mean, which for one run is the value itself.
func roundValues(sm stats.Sample) []float64 {
	if len(sm.Values) > 0 {
		return append([]float64(nil), sm.Values...)
	}
	if sm.N == 1 {
		return []float64{sm.Mean}
	}
	return nil
}

// finalizeMerged recomputes every summary from the accumulated values.
func finalizeMerged(r *Result) {
	if r == nil {
		return
	}
	for i := range r.Series {
		s := &r.Series[i]
		for j := range s.Samples {
			s.Samples[j] = stats.Summarize(s.Samples[j].Values)
		}
	}
}
