package bench

import (
	"strings"
	"testing"

	"nfstricks/internal/stats"
)

// tiny keeps shape-checking tests fast: single run, 1/64 of the paper's
// file sizes (4 MB per iteration).
var tiny = Params{Runs: 1, Scale: 64, Seed: 1}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 13 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig1", "fig8", "table1", "ablate-nfsheur"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

func TestResultFormatAndCSV(t *testing.T) {
	r := &Result{
		ID: "x", Title: "T", XLabel: "readers", YLabel: "MB/s",
		X: []int{1, 2},
		Series: []Series{{
			Label: "a,b", // comma must be escaped in CSV
			Samples: []stats.Sample{
				{N: 3, Mean: 1.5, StdDev: 0.1, Median: 1.4},
				{N: 3, Mean: 2.5}},
		}},
		Notes: []string{"hello"},
	}
	text := r.Format()
	// Table rows lead with the median, then mean (stddev).
	if !strings.Contains(text, "1.40  1.50 (0.10)") || !strings.Contains(text, "note: hello") {
		t.Fatalf("Format output:\n%s", text)
	}
	csv := r.CSV()
	if !strings.Contains(csv, "a;b mean") || !strings.Contains(csv, "a;b median") ||
		!strings.Contains(csv, "1,1.5000,0.1000,1.4000") {
		t.Fatalf("CSV output:\n%s", csv)
	}
}

func TestFig1Shape(t *testing.T) {
	r, err := Fig1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string, x int) float64 {
		s, ok := r.SeriesByLabel(label)
		if !ok {
			t.Fatalf("series %s missing", label)
		}
		return s.Samples[x].Mean
	}
	// ZCAV: outer partitions beat inner ones at every reader count.
	for x := range r.X {
		if get("ide1", x) <= get("ide4", x) {
			t.Errorf("x=%d: ide1 (%.1f) <= ide4 (%.1f)", r.X[x], get("ide1", x), get("ide4", x))
		}
		if get("scsi1", x) <= get("scsi4", x) {
			t.Errorf("x=%d: scsi1 <= scsi4", r.X[x])
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	noTags, _ := r.SeriesByLabel("scsi1/no tags")
	tags, _ := r.SeriesByLabel("scsi1/tags")
	if noTags == nil || tags == nil {
		t.Fatal("series missing")
	}
	// For >= 2 readers, disabling tagged queues must win clearly.
	for x := 1; x < len(r.X); x++ {
		if noTags.Samples[x].Mean < 1.3*tags.Samples[x].Mean {
			t.Errorf("x=%d: no-tags %.1f not >> tags %.1f",
				r.X[x], noTags.Samples[x].Mean, tags.Samples[x].Mean)
		}
	}
	// Single reader: roughly equal (the paper's spike).
	if ratio := noTags.Samples[0].Mean / tags.Samples[0].Mean; ratio > 1.2 || ratio < 0.8 {
		t.Errorf("single-reader tags ratio %.2f, want ~1", ratio)
	}
}

func TestFig3Shape(t *testing.T) {
	// The staircase needs files large enough that steady-state transfer
	// dominates startup, so run at 1/16 scale (2 MB files).
	r, err := Fig3(Params{Runs: 1, Scale: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	elev, _ := r.SeriesByLabel("ide1/elev")
	ncscan, _ := r.SeriesByLabel("ide1/ncscan")
	if elev == nil || ncscan == nil {
		t.Fatal("series missing")
	}
	staircase := elev.Samples[7].Mean / elev.Samples[0].Mean
	if staircase < 2.5 {
		t.Errorf("elevator staircase ratio %.1f, want > 2.5", staircase)
	}
	flat := ncscan.Samples[7].Mean / ncscan.Samples[0].Mean
	if flat > 1.5 {
		t.Errorf("ncscan distribution ratio %.1f, want ~1", flat)
	}
	// N-CSCAN's fastest must be slower than the Elevator's slowest
	// (the paper: fairness costs ~2x bandwidth).
	if ncscan.Samples[0].Mean < elev.Samples[7].Mean {
		t.Errorf("ncscan first (%.2fs) faster than elevator last (%.2fs)",
			ncscan.Samples[0].Mean, elev.Samples[7].Mean)
	}
}

func TestFig8AndTable1Shape(t *testing.T) {
	// The cursor gain needs a few MB of warmup per sub-stream, so this
	// test runs at 1/16 scale (16 MB file) rather than the tiny 1/64.
	r, err := Table1(Params{Runs: 1, Scale: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table1" {
		t.Fatalf("id = %s", r.ID)
	}
	for _, disk := range []string{"scsi1", "ide1"} {
		cur, _ := r.SeriesByLabel(disk + "/cursor")
		def, _ := r.SeriesByLabel(disk + "/default")
		if cur == nil || def == nil {
			t.Fatal("series missing")
		}
		for x := range r.X {
			// The paper's headline: cursors are faster on every stride
			// cell (+50-140% on their hardware; our simulated per-RPC
			// overhead caps the single-reader gain at lower ratios, see
			// EXPERIMENTS.md, so the floor here is +15%).
			if cur.Samples[x].Mean < 1.15*def.Samples[x].Mean {
				t.Errorf("%s s=%d: cursor %.2f not >> default %.2f",
					disk, r.X[x], cur.Samples[x].Mean, def.Samples[x].Mean)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	p := tiny
	r, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	oldTbl, _ := r.SeriesByLabel("default/default nfsheur")
	newTbl, _ := r.SeriesByLabel("default/new nfsheur")
	slow, _ := r.SeriesByLabel("slowdown/new nfsheur")
	always, _ := r.SeriesByLabel("always")
	if oldTbl == nil || newTbl == nil || slow == nil || always == nil {
		t.Fatal("series missing")
	}
	// At 16 readers the 4.x table must be clearly behind, and the new
	// table must get within reach of Always.
	x := 4 // 16 readers
	if oldTbl.Samples[x].Mean > 0.8*newTbl.Samples[x].Mean {
		t.Errorf("old table %.1f not clearly behind new table %.1f",
			oldTbl.Samples[x].Mean, newTbl.Samples[x].Mean)
	}
	if newTbl.Samples[x].Mean < 0.7*always.Samples[x].Mean {
		t.Errorf("new table %.1f too far from always %.1f",
			newTbl.Samples[x].Mean, always.Samples[x].Mean)
	}
	// SlowDown adds nothing beyond the new table (paper's surprise).
	if ratio := slow.Samples[x].Mean / newTbl.Samples[x].Mean; ratio < 0.8 || ratio > 1.3 {
		t.Errorf("slowdown/new ratio %.2f, want ~1", ratio)
	}
}

func TestAblationCursorsShape(t *testing.T) {
	r, err := AblationCursors(tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series[0]
	// 8 cursors must beat 1 cursor on an 8-stride pattern.
	if s.Samples[3].Mean < 1.15*s.Samples[0].Mean {
		t.Errorf("8 cursors %.2f not > 1 cursor %.2f",
			s.Samples[3].Mean, s.Samples[0].Mean)
	}
}

func TestAblationWindowShape(t *testing.T) {
	r, err := AblationWindow(tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series[0]
	// Some read-ahead must beat (almost) none.
	if s.Samples[3].Mean < s.Samples[0].Mean {
		t.Errorf("window 32 (%.2f) worse than window 1 (%.2f)",
			s.Samples[3].Mean, s.Samples[0].Mean)
	}
}
