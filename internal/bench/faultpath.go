package bench

import (
	"errors"
	"fmt"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/stats"
	"nfstricks/internal/vfs"
)

// faultLossPcts is the injected loss sweep, in percent of messages per
// wire direction.
var faultLossPcts = []int{0, 1, 5}

// faultTCPStall is the injected mid-record stall standing in for "loss"
// on TCP: the kernel retransmits lost segments itself, so at the RPC
// layer a lossy TCP path shows up as records arriving late (and, past
// the client's RTO, as retransmitted calls into the DRC), not as
// records vanishing.
const faultTCPStall = 30 * time.Millisecond

// faultFileBytes keeps created files small: this experiment measures
// the fault path, not data transfer.
const faultFileBytes = 64

// faultRetryPolicy is the client policy every cell runs: aggressive
// enough that a loopback retransmission costs tens of milliseconds,
// bounded enough that a cell cannot hang.
func faultRetryPolicy(run int, p Params) rpcnet.RetryPolicy {
	return rpcnet.RetryPolicy{
		MaxTransmits: 8,
		InitialRTO:   60 * time.Millisecond,
		MinRTO:       20 * time.Millisecond,
		MaxRTO:       time.Second,
		Jitter:       0.2,
		Seed:         p.Seed + int64(run),
	}
}

// faultCellResult is one cell's measurements and integrity counters.
type faultCellResult struct {
	goodput float64 // completed triplet ops per second
	p99ms   float64 // per-op p99 latency, milliseconds
	// spurious counts NOENT/EXIST errors the client observed on
	// operations that should have succeeded — the DRC-off wrong answers.
	spurious int
	// dupExec counts executions beyond one per issued non-idempotent
	// call (ProcCounts measures executed procedures; cache hits and
	// busy-drops don't execute).
	dupExec int

	faultsIn, faultsOut rpcnet.FaultStats
	retry               rpcnet.RetryStats
	rtoMS               float64 // final smoothed RTO (gauge), milliseconds
	drcHits, drcBusy    int64
}

// faultCell runs the create/rename/remove workload against a fresh
// live server with the given injected loss and DRC setting.
func faultCell(network string, lossPct int, drcOn bool, triplets, run int, p Params) (faultCellResult, error) {
	var r faultCellResult
	svc := nfsd.New(memfs.NewFS(), nfsd.Config{
		DRC: nfsd.DRCConfig{Enabled: drcOn},
	})
	defer svc.Close()
	var inj *rpcnet.FaultInjector
	if lossPct > 0 {
		cfg := rpcnet.FaultConfig{Seed: p.Seed + int64(run)}
		if network == "udp" {
			cfg.DropProb = float64(lossPct) / 100
		} else {
			cfg.StallProb = float64(lossPct) / 100
			cfg.Stall = faultTCPStall
		}
		inj = rpcnet.NewFaultInjector(cfg)
	}
	srv, err := nfsd.NewServerOpts("127.0.0.1:0", svc, rpcnet.ServerOptions{Faults: inj})
	if err != nil {
		return r, err
	}
	defer srv.Close()
	c, err := memfs.DialClientRetry(network, srv.Addr(), faultRetryPolicy(run, p), nil)
	if err != nil {
		return r, err
	}
	defer c.Close()
	// The retrier's counters go through the metrics registry and are read
	// back from a snapshot at the end of the cell — the cell consumes the
	// same rpcnet_retry_* series a production /metrics scrape would see,
	// so the export path is exercised on every fault-path run.
	reg := obs.NewRegistry()
	c.Retrier().RegisterObs(reg)

	dir, err := c.Mkdir(vfs.RootFH, "d")
	if err != nil {
		return r, fmt.Errorf("mkdir: %w", err)
	}
	// The triplet loop: each iteration creates, renames and removes one
	// file. Every operation should succeed — on a perfect network and,
	// with the DRC shielding retransmissions, on a lossy one too. A
	// NOENT or EXIST here is a duplicated execution's wrong answer (the
	// retransmission re-ran against post-execution state), counted, not
	// fatal: with the DRC off it is the pinned failure under test.
	lats := make([]float64, 0, 3*triplets)
	spuriousKind := func(err error) bool {
		return errors.Is(err, vfs.ErrNoEnt) || errors.Is(err, vfs.ErrExist)
	}
	op := func(f func() error) error {
		start := time.Now()
		err := f()
		lats = append(lats, float64(time.Since(start).Microseconds())/1000)
		if err != nil && spuriousKind(err) {
			r.spurious++
			return nil
		}
		return err
	}
	start := time.Now()
	for i := 0; i < triplets; i++ {
		name, renamed := fmt.Sprintf("f%04d", i), fmt.Sprintf("f%04dr", i)
		if err := op(func() error {
			_, err := c.Create(dir, name, faultFileBytes)
			return err
		}); err != nil {
			return r, fmt.Errorf("create %s: %w", name, err)
		}
		if err := op(func() error { return c.Rename(dir, name, dir, renamed) }); err != nil {
			return r, fmt.Errorf("rename %s: %w", name, err)
		}
		if err := op(func() error { return c.Remove(dir, renamed) }); err != nil {
			return r, fmt.Errorf("remove %s: %w", renamed, err)
		}
	}
	elapsed := time.Since(start).Seconds()

	// Integrity: every triplet removed what it created, so the
	// directory must be empty regardless of loss — leftover entries
	// mean a lost side effect, phantom entries a duplicated one.
	left, err := c.ReaddirAll(dir, 8192)
	if err != nil {
		return r, fmt.Errorf("final readdir: %w", err)
	}
	if len(left) != 0 {
		return r, fmt.Errorf("directory not empty after %d triplets: %d entries left", triplets, len(left))
	}
	// Executed-procedure counts: ProcCounts only increments when a call
	// actually dispatches (DRC hits and busy-drops do not), so any
	// excess over the issued count is a duplicated execution.
	counts := svc.ProcCounts()
	for _, proc := range []uint32{nfsproto.ProcCreate, nfsproto.ProcRename, nfsproto.ProcRemove} {
		if extra := int(counts[proc]) - triplets; extra > 0 {
			r.dupExec += extra
		}
	}

	r.goodput = float64(3*triplets) / elapsed
	r.p99ms = stats.Percentile(lats, 99)
	r.faultsIn = inj.Stats(rpcnet.DirIn)
	r.faultsOut = inj.Stats(rpcnet.DirOut)
	snap := reg.Dump()
	r.retry = rpcnet.RetryStats{
		Calls:         snap.Counters["rpcnet_retry_calls_total"],
		Retransmits:   snap.Counters["rpcnet_retry_retransmits_total"],
		MajorTimeouts: snap.Counters["rpcnet_retry_major_timeouts_total"],
		SendFailures:  snap.Counters["rpcnet_retry_send_failures_total"],
	}
	r.rtoMS = snap.Gauges["rpcnet_retry_rto_seconds"] * 1000
	drcStats := svc.DRCStats()
	r.drcHits, r.drcBusy = drcStats.Hits, drcStats.Busy
	return r, nil
}

// faultTriplets scales the per-cell workload.
func faultTriplets(p Params) int {
	n := 150 / p.Scale
	if n < 12 {
		n = 12
	}
	return n
}

// FaultPath is the fault-path experiment: goodput and p99 latency of a
// metadata-heavy workload (create/rename/remove triplets) over live
// sockets, swept over injected loss × transport × DRC on/off.
//
// The shape under test: on a perfect network the DRC costs nothing
// measurable; under loss, the UDP client's retransmissions hit
// non-idempotent procedures, and without the DRC the re-executions
// return wrong answers (NOENT from a REMOVE that already removed,
// EXIST from a replayed MKDIR-style create path) — the experiment
// counts them and pins that behavior. With the DRC on, the same loss
// rate completes with zero spurious errors and zero duplicated
// executions (asserted, not just reported), paying only the
// retransmission latency: the degradation curve, measured honestly,
// with the injected fault counters in the output.
func FaultPath(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "fault-path", Title: "Fault-tolerant RPC path: loss x transport x DRC over live sockets",
		XLabel: "loss%", YLabel: "triplet ops/s (p99: ms)",
		X: faultLossPcts,
	}
	triplets := faultTriplets(p)
	// One discarded warmup cell: first live measurement pays cold TCP
	// buffers and allocator growth (see zcav.go).
	if _, err := faultCell("tcp", 0, true, triplets, 0, p); err != nil {
		return nil, fmt.Errorf("fault-path warmup: %w", err)
	}
	type cell struct {
		network string
		drcOn   bool
	}
	cells := []cell{
		{"udp", true}, {"udp", false},
		{"tcp", true}, {"tcp", false},
	}
	label := func(c cell) string {
		drc := "off"
		if c.drcOn {
			drc = "on"
		}
		return fmt.Sprintf("%s/drc=%s", c.network, drc)
	}
	goodput := make(map[string][][]float64)
	p99 := make(map[string][][]float64)
	for _, c := range cells {
		goodput[label(c)] = make([][]float64, len(faultLossPcts))
		p99[label(c)] = make([][]float64, len(faultLossPcts))
	}
	var totals struct {
		spuriousOff, dupOff int
		drcHits, drcBusy    int64
		retrans             int64
		drops, stalls       int64
		maxRTOms            float64
	}
	// Runs interleave the four cells so machine drift lands on every
	// series equally.
	for xi, loss := range faultLossPcts {
		for run := 0; run < p.Runs; run++ {
			for _, c := range cells {
				m, err := faultCell(c.network, loss, c.drcOn, triplets, run, p)
				if err != nil {
					return nil, fmt.Errorf("fault-path %s loss=%d%%: %w", label(c), loss, err)
				}
				if c.drcOn && (m.spurious > 0 || m.dupExec > 0) {
					return nil, fmt.Errorf("fault-path %s loss=%d%%: DRC on but %d spurious errors, %d duplicated executions",
						label(c), loss, m.spurious, m.dupExec)
				}
				goodput[label(c)][xi] = append(goodput[label(c)][xi], m.goodput)
				p99[label(c)][xi] = append(p99[label(c)][xi], m.p99ms)
				if !c.drcOn {
					totals.spuriousOff += m.spurious
					totals.dupOff += m.dupExec
				}
				totals.drcHits += m.drcHits
				totals.drcBusy += m.drcBusy
				totals.retrans += m.retry.Retransmits
				totals.drops += m.faultsIn.Drops + m.faultsOut.Drops
				totals.stalls += m.faultsIn.Stalls + m.faultsOut.Stalls
				if m.rtoMS > totals.maxRTOms {
					totals.maxRTOms = m.rtoMS
				}
			}
		}
	}
	for _, c := range cells {
		s := Series{Label: label(c) + "/goodput", Better: BetterHigher}
		for xi := range faultLossPcts {
			s.Samples = append(s.Samples, stats.Summarize(goodput[label(c)][xi]))
		}
		r.Series = append(r.Series, s)
	}
	for _, c := range cells {
		s := Series{Label: label(c) + "/p99ms", Better: BetterLower}
		for xi := range faultLossPcts {
			s.Samples = append(s.Samples, stats.Summarize(p99[label(c)][xi]))
		}
		r.Series = append(r.Series, s)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("each cell: fresh live server, %d create/rename/remove triplets; loss%% = per-direction message fault probability", triplets),
		fmt.Sprintf("udp loss = dropped datagrams; tcp loss = %v mid-record stalls (the kernel retransmits, so RPC-level loss shows up as delay)", faultTCPStall),
		fmt.Sprintf("injected faults: %d drops, %d stalls; client retransmissions: %d", totals.drops, totals.stalls, totals.retrans),
		fmt.Sprintf("drc: %d hits, %d busy-drops; drc=on cells asserted zero spurious errors and zero duplicated executions", totals.drcHits, totals.drcBusy),
		fmt.Sprintf("drc=off cells observed %d spurious NOENT/EXIST and %d duplicated executions — the wrong answers the DRC exists to prevent", totals.spuriousOff, totals.dupOff),
		fmt.Sprintf("client retry policy: %d transmits max, RTO in [20ms, 1s], Jacobson-estimated, 20%% jitter", 8),
		fmt.Sprintf("retry counters read via obs registry (rpcnet_retry_*); max end-of-cell smoothed RTO %.1fms", totals.maxRTOms))
	return r, nil
}
