package bench

import (
	"strings"
	"testing"

	"nfstricks/internal/stats"
)

// synthetic builds a result with given series values across X.
func synthetic(id string, x []int, series map[string][]float64) *Result {
	r := &Result{ID: id, X: x}
	for label, ys := range series {
		s := Series{Label: label}
		for _, y := range ys {
			s.Samples = append(s.Samples, stats.Sample{N: 1, Mean: y})
		}
		r.Series = append(r.Series, s)
	}
	return r
}

func allOK(checks []Check) bool {
	for _, c := range checks {
		if !c.OK {
			return false
		}
	}
	return len(checks) > 0
}

func TestVerifyFig1PassAndFail(t *testing.T) {
	x := []int{1, 2, 4, 8, 16, 32}
	good := synthetic("fig1", x, map[string][]float64{
		"ide1":  {40, 39, 38, 37, 36, 35},
		"ide4":  {26, 25, 25, 24, 24, 23},
		"scsi1": {30, 16, 16, 15, 15, 14},
		"scsi4": {22, 13, 13, 13, 12, 12},
	})
	if !allOK(Verify(good)) {
		t.Fatalf("good fig1 failed:\n%s", FormatChecks(Verify(good)))
	}
	bad := synthetic("fig1", x, map[string][]float64{
		"ide1":  {20, 20, 20, 20, 20, 20},
		"ide4":  {26, 25, 25, 24, 24, 23}, // inner faster: ZCAV inverted
		"scsi1": {30, 16, 16, 15, 15, 14},
		"scsi4": {22, 13, 13, 13, 12, 12},
	})
	if allOK(Verify(bad)) {
		t.Fatal("inverted ZCAV passed verification")
	}
}

func TestVerifyFig3(t *testing.T) {
	x := []int{1, 2, 3, 4, 5, 6, 7, 8}
	good := synthetic("fig3", x, map[string][]float64{
		"ide1/elev":       {1.0, 2.0, 2.9, 3.9, 4.8, 5.5, 5.8, 6.0},
		"ide1/ncscan":     {15, 15.1, 15.2, 15.3, 15.4, 15.5, 15.6, 16},
		"scsi1/elev/tags": {8, 8, 8, 8, 8, 8, 8, 8.2},
	})
	if !allOK(Verify(good)) {
		t.Fatalf("good fig3 failed:\n%s", FormatChecks(Verify(good)))
	}
	// A fair elevator (no staircase) must fail.
	bad := synthetic("fig3", x, map[string][]float64{
		"ide1/elev":       {5, 5, 5, 5, 5, 5, 5, 5.5},
		"ide1/ncscan":     {15, 15, 15, 15, 15, 15, 15, 16},
		"scsi1/elev/tags": {8, 8, 8, 8, 8, 8, 8, 8.2},
	})
	if allOK(Verify(bad)) {
		t.Fatal("flat elevator passed the staircase check")
	}
}

func TestVerifyFig7(t *testing.T) {
	x := []int{1, 2, 4, 8, 16, 32}
	good := synthetic("fig7", x, map[string][]float64{
		"always":                  {12, 12, 12, 12, 12, 11},
		"slowdown/new nfsheur":    {12, 12, 12, 11, 11, 10},
		"default/new nfsheur":     {12, 12, 12, 11, 11, 10},
		"default/default nfsheur": {12, 12, 12, 7, 6, 5},
	})
	if !allOK(Verify(good)) {
		t.Fatalf("good fig7 failed:\n%s", FormatChecks(Verify(good)))
	}
}

func TestVerifyFig8WorstRatio(t *testing.T) {
	x := []int{2, 4, 8}
	r := synthetic("fig8", x, map[string][]float64{
		"scsi1/cursor":  {15, 15, 14},
		"scsi1/default": {9, 8, 8},
		"ide1/cursor":   {11, 14, 12},
		"ide1/default":  {7, 7, 5},
	})
	checks := Verify(r)
	if !allOK(checks) {
		t.Fatalf("paper's own Table 1 numbers failed:\n%s", FormatChecks(checks))
	}
}

func TestVerifyUnknownID(t *testing.T) {
	if Verify(&Result{ID: "nope"}) != nil {
		t.Fatal("unknown id produced checks")
	}
}

func TestFormatChecks(t *testing.T) {
	out := FormatChecks([]Check{
		{Claim: "a", OK: true, Got: "1 vs 2"},
		{Claim: "b", OK: false, Got: "3"},
	})
	if !strings.Contains(out, "[PASS] a") || !strings.Contains(out, "[FAIL] b") {
		t.Fatalf("FormatChecks:\n%s", out)
	}
}

func TestVerifyAgainstRealTinyRun(t *testing.T) {
	// End-to-end: a real (tiny) fig2 run must pass its own checks.
	r, err := Fig2(Params{Runs: 1, Scale: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checks := Verify(r)
	for _, c := range checks {
		if !c.OK {
			t.Errorf("fig2 check failed: %s (%s)", c.Claim, c.Got)
		}
	}
}
