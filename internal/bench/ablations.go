package bench

import (
	"fmt"

	"nfstricks/internal/ffs"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/readahead"
	"nfstricks/internal/stats"
	"nfstricks/internal/testbed"
	"nfstricks/internal/workload"
)

// AblationAging tests the paper's §3 claim that read-ahead heuristics
// matter more on aged file systems: the cursor-vs-default stride gap is
// measured at increasing fragmentation levels (X is the maximum aging
// skip in blocks).
func AblationAging(p Params) (*Result, error) {
	p.fill()
	agingLevels := []int{0, 128, 512}
	r := &Result{
		ID: "ablate-aging", Title: "Stride (s=4, ide1) throughput vs file-system aging",
		XLabel: "aging-skip", YLabel: "throughput (MB/s)",
		X: agingLevels,
	}
	size := int64(256) * workload.MB / int64(p.Scale)
	for _, heuristic := range []string{"cursor", "default"} {
		s := Series{Label: heuristic}
		for _, aging := range agingLevels {
			var xs []float64
			for run := 0; run < p.Runs; run++ {
				tb, err := testbed.New(testbed.Options{
					Seed: p.Seed + int64(run), Disk: testbed.IDE,
					FS: ffs.Config{AgingSkipBlocks: aging},
					Server: nfsserver.Config{
						Heuristic: heuristicByName(heuristic),
						Table:     nfsheur.ImprovedParams(),
					},
				})
				if err != nil {
					return nil, err
				}
				if _, err := tb.FS.Create("stride", size); err != nil {
					return nil, err
				}
				if err := tb.Start(); err != nil {
					return nil, err
				}
				res, err := workload.RunNFSStrideReader(tb, "stride", 4)
				tb.K.Shutdown()
				if err != nil {
					return nil, err
				}
				xs = append(xs, res.ThroughputMBps())
			}
			s.Samples = append(s.Samples, stats.Summarize(xs))
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// AblationCursors sweeps the per-file cursor limit against an 8-stride
// reader: the paper's §8 notes that workloads can want "an arbitrary
// number of cursors"; below 8 cursors the 8-stride pattern thrashes the
// cursor set.
func AblationCursors(p Params) (*Result, error) {
	p.fill()
	counts := []int{1, 2, 4, 8, 16}
	r := &Result{
		ID: "ablate-cursors", Title: "8-stride (ide1) throughput vs cursors per file",
		XLabel: "cursors", YLabel: "throughput (MB/s)",
		X: counts,
	}
	size := int64(256) * workload.MB / int64(p.Scale)
	s := Series{Label: "cursor heuristic"}
	for _, mc := range counts {
		var xs []float64
		for run := 0; run < p.Runs; run++ {
			tb, err := testbed.New(testbed.Options{
				Seed: p.Seed + int64(run), Disk: testbed.IDE,
				Server: nfsserver.Config{
					Heuristic: &readahead.CursorHeuristic{MaxCursors: mc},
					Table:     nfsheur.ImprovedParams(),
				},
			})
			if err != nil {
				return nil, err
			}
			if _, err := tb.FS.Create("stride", size); err != nil {
				return nil, err
			}
			if err := tb.Start(); err != nil {
				return nil, err
			}
			res, err := workload.RunNFSStrideReader(tb, "stride", 8)
			tb.K.Shutdown()
			if err != nil {
				return nil, err
			}
			xs = append(xs, res.ThroughputMBps())
		}
		s.Samples = append(s.Samples, stats.Summarize(xs))
	}
	r.Series = append(r.Series, s)
	r.Notes = append(r.Notes, "below 8 cursors the 8 sub-streams evict each other (LRU) and read-ahead never builds")
	return r, nil
}

// AblationNfsheur sweeps nfsheur table geometries under 32 concurrent
// UDP readers with the default heuristic — isolating the paper's §6.3
// finding that table capacity, not heuristic accuracy, dominates.
func AblationNfsheur(p Params) (*Result, error) {
	p.fill()
	tables := []struct {
		label string
		prm   nfsheur.Params
	}{
		{"15 slots/1 probe (4.x)", nfsheur.DefaultParams()},
		{"64 slots/4 probes (paper)", nfsheur.ImprovedParams()},
		{"1024 slots/8 probes", nfsheur.LargeParams()},
	}
	r := &Result{
		ID: "ablate-nfsheur", Title: "Throughput vs nfsheur geometry (UDP, default heuristic)",
		XLabel: "readers", YLabel: "throughput (MB/s)",
		X: workload.ReaderCounts,
	}
	for _, tbl := range tables {
		c := cell{tbl.label, testbed.Options{
			Disk: testbed.IDE, Partition: 1,
			Server: nfsserver.Config{Table: tbl.prm},
		}}
		s := Series{Label: tbl.label}
		for _, n := range workload.ReaderCounts {
			sample, err := runNFSCell(c, "default", n, p)
			if err != nil {
				return nil, err
			}
			s.Samples = append(s.Samples, sample)
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// AblationWindow sweeps the server's maximum read-ahead window with the
// Always heuristic at 8 readers: too little read-ahead leaves the disk
// waiting on round trips; the returns diminish once the window covers
// the pipeline.
func AblationWindow(p Params) (*Result, error) {
	p.fill()
	windows := []int{0, 8, 16, 32, 64}
	r := &Result{
		ID: "ablate-window", Title: "8-reader UDP throughput vs server read-ahead window",
		XLabel: "window-blocks", YLabel: "throughput (MB/s)",
		X: windows,
	}
	s := Series{Label: "always heuristic, ide1"}
	for _, w := range windows {
		cfg := nfsserver.Config{Table: nfsheur.ImprovedParams(), MaxReadAhead: w}
		if w == 0 {
			// MaxReadAhead==0 means "default" to the config; emulate a
			// no-read-ahead server with a window of 1 block.
			cfg.MaxReadAhead = 1
		}
		c := cell{fmt.Sprintf("w=%d", w), testbed.Options{
			Disk: testbed.IDE, Partition: 1, Server: cfg,
		}}
		sample, err := runNFSCell(c, "always", 8, p)
		if err != nil {
			return nil, err
		}
		s.Samples = append(s.Samples, sample)
	}
	r.Series = append(r.Series, s)
	return r, nil
}
