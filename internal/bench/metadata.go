package bench

import (
	"fmt"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/stats"
	"nfstricks/internal/vfs"
	"nfstricks/internal/zonefs"
)

// metaDirSizes is the directory-size sweep: a small directory and the
// 1000-entry directory the readdir paging contract is sized for.
var metaDirSizes = []int{100, 1000}

// metaFileBytes is the size of each created file — small enough that
// the data path never dominates a metadata measurement.
const metaFileBytes = 512

// metaReaddirBudget is the per-READDIR reply budget in bytes (the
// client pages a large directory through multiple replies).
const metaReaddirBudget = 8192

// metaRates is one cell's measurements, all in operations per second
// (readdir rates count entries scanned per second).
type metaRates struct {
	create, stat, rename     float64
	readdirCold, readdirWarm float64
}

// metaCell measures the metadata path end to end on one live server:
// create entries files in a fresh directory, GETATTR each, RENAME
// each, then page through the directory twice with READDIR — for the
// zone backend the first scan runs against dropped caches (the
// directory's entry blocks pay the simulated disk) and the second runs
// warm; the in-memory backend has no disk to be cold on, so both scans
// measure the same path.
func metaCell(backendKind string, entries, run int, p Params) (metaRates, error) {
	var r metaRates
	var backend vfs.Backend
	var zfs *zonefs.FS
	switch backendKind {
	case "mem":
		backend = memfs.NewFS()
	case "zone":
		zfs = zonefs.New(zonefs.Config{
			Placement: zonefs.Outer,
			CacheMB:   64,
			Seed:      p.Seed + int64(run),
		})
		backend = zfs
	default:
		return r, fmt.Errorf("metadata-path: unknown backend %q", backendKind)
	}
	svc := nfsd.New(backend, nfsd.Config{})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		return r, err
	}
	defer srv.Close()
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		return r, err
	}
	defer c.Close()

	dir, err := c.Mkdir(vfs.RootFH, "d")
	if err != nil {
		return r, err
	}
	names := make([]string, entries)
	for i := range names {
		names[i] = fmt.Sprintf("f%04d", i)
	}

	fhs := make([]nfsproto.FH, entries)
	start := time.Now()
	for i, name := range names {
		if fhs[i], err = c.Create(dir, name, metaFileBytes); err != nil {
			return r, fmt.Errorf("create %s: %w", name, err)
		}
	}
	r.create = float64(entries) / time.Since(start).Seconds()

	start = time.Now()
	for _, fh := range fhs {
		if _, err := c.Getattr(fh); err != nil {
			return r, err
		}
	}
	r.stat = float64(entries) / time.Since(start).Seconds()

	start = time.Now()
	for _, name := range names {
		if err := c.Rename(dir, name, dir, name+"r"); err != nil {
			return r, fmt.Errorf("rename %s: %w", name, err)
		}
	}
	r.rename = float64(entries) / time.Since(start).Seconds()

	scan := func() (float64, error) {
		start := time.Now()
		got, err := c.ReaddirAll(dir, metaReaddirBudget)
		if err != nil {
			return 0, err
		}
		if len(got) != entries {
			return 0, fmt.Errorf("readdir scanned %d entries, want %d", len(got), entries)
		}
		return float64(entries) / time.Since(start).Seconds(), nil
	}
	// Cold scan: for the zone backend the directory's entry blocks were
	// installed by the creates/renames, so they must be explicitly
	// evicted for the scan to pay the disk.
	if zfs != nil {
		zfs.DropCaches()
	}
	if r.readdirCold, err = scan(); err != nil {
		return r, err
	}
	if r.readdirWarm, err = scan(); err != nil {
		return r, err
	}
	return r, nil
}

// MetadataPath is the metadata-path experiment: create/stat/rename
// throughput and READDIR paging rate over live TCP, swept over
// directory size, on the in-memory backend and the ZCAV disk stack.
//
// The shape under test: namespace operations and warm directory scans
// run at memory speed on both backends — the disk model only charges
// for block fetches, and the creates themselves install the
// directory's entry blocks as resident pages — but a cold READDIR of a
// large directory on the zone backend pays a real (simulated) disk
// fetch for every entry block, so the cold/warm gap opens with
// directory size. A benchmark that measures directory scans without
// controlling cache warmth reports whichever number it happened to
// measure — the paper's cache-warmth trap, on the metadata path.
func MetadataPath(p Params) (*Result, error) {
	p.fill()
	r := &Result{
		ID: "metadata-path", Title: "Metadata path: create/stat/rename/readdir over live TCP",
		XLabel: "dirsize", YLabel: "ops/s (readdir: entries/s)",
		X: metaDirSizes,
	}
	entriesFor := func(size int) int {
		n := size / p.Scale
		if n < 20 {
			n = 20
		}
		return n
	}
	// One discarded warmup cell: the first live measurement in a
	// process pays cold TCP buffers and allocator growth (see zcav.go).
	if _, err := metaCell("mem", entriesFor(metaDirSizes[0]), 0, p); err != nil {
		return nil, fmt.Errorf("metadata-path warmup: %w", err)
	}
	type series struct {
		label string
		pick  func(metaRates) float64
	}
	byBackend := map[string][]series{
		"mem": {
			{"mem/create", func(m metaRates) float64 { return m.create }},
			{"mem/stat", func(m metaRates) float64 { return m.stat }},
			{"mem/rename", func(m metaRates) float64 { return m.rename }},
			{"mem/readdir", func(m metaRates) float64 { return m.readdirWarm }},
		},
		"zone": {
			{"zone/create", func(m metaRates) float64 { return m.create }},
			{"zone/stat", func(m metaRates) float64 { return m.stat }},
			{"zone/rename", func(m metaRates) float64 { return m.rename }},
			{"zone/readdir-cold", func(m metaRates) float64 { return m.readdirCold }},
			{"zone/readdir-warm", func(m metaRates) float64 { return m.readdirWarm }},
		},
	}
	backends := []string{"mem", "zone"}
	samples := make(map[string][][]float64)
	for _, b := range backends {
		for _, s := range byBackend[b] {
			samples[s.label] = make([][]float64, len(metaDirSizes))
		}
	}
	// Runs interleave the backends (mem and zone measured back to back
	// within each run) so machine drift lands on both series equally.
	for xi, size := range metaDirSizes {
		for run := 0; run < p.Runs; run++ {
			for _, b := range backends {
				m, err := metaCell(b, entriesFor(size), run, p)
				if err != nil {
					return nil, fmt.Errorf("metadata-path %s dirsize=%d: %w", b, size, err)
				}
				for _, s := range byBackend[b] {
					samples[s.label][xi] = append(samples[s.label][xi], s.pick(m))
				}
			}
		}
	}
	for _, b := range backends {
		for _, s := range byBackend[b] {
			out := Series{Label: s.label}
			for xi := range metaDirSizes {
				out.Samples = append(out.Samples, stats.Summarize(samples[s.label][xi]))
			}
			r.Series = append(r.Series, out)
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("each cell: fresh live server over TCP loopback; files are %d B; readdir pages %d-byte replies", metaFileBytes, metaReaddirBudget),
		"zone/readdir-cold runs after DropCaches: every directory entry block pays the simulated disk",
		"creates/renames install directory blocks as resident pages, so only the cold scan touches the disk model")
	return r, nil
}
