// Package testbed assembles the paper's benchmark rig (§4): a server
// with SCSI and IDE disks divided into quarter partitions, a gigabit
// switch, and a client machine, with every knob the paper turns —
// scheduler choice, tagged command queues, transport, read-ahead
// heuristic, nfsheur parameters, and client CPU load — exposed as an
// option.
package testbed

import (
	"fmt"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/ffs"
	"nfstricks/internal/iosched"
	"nfstricks/internal/netsim"
	"nfstricks/internal/nfsclient"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/sim"
)

// DiskKind selects one of the paper's two test drives.
type DiskKind string

// The paper's drives.
const (
	SCSI DiskKind = "scsi" // IBM DDYS-T36950N
	IDE  DiskKind = "ide"  // WD WD200BB
)

// Options configures a testbed instance.
type Options struct {
	// Seed drives all randomness in the run.
	Seed int64
	// Disk picks the drive (default SCSI).
	Disk DiskKind
	// Partition is the quarter partition 1 (outermost) to 4 (innermost)
	// holding the benchmark file system (default 1).
	Partition int
	// Scheduler names the host disk scheduling discipline: "elevator"
	// (default), "ncscan", "fifo", "sstf".
	Scheduler string
	// DisableTCQ turns the drive's tagged command queue off (the
	// paper's "no tags" configurations). Meaningless on the IDE drive,
	// which has no TCQ.
	DisableTCQ bool
	// ServerCacheBlocks sizes the server buffer cache (default 8192
	// blocks = 64 MB of the server's 256 MB).
	ServerCacheBlocks int
	// Server tunes the NFS server (heuristic, nfsheur table, nfsds).
	Server nfsserver.Config
	// Client tunes the NFS client (transport, nfsiods, read-ahead).
	Client nfsclient.Config
	// BusyProcs runs this many infinite-loop processes on the client
	// (the paper's "busy client" runs four).
	BusyProcs int
	// Net overrides network parameters.
	Net netsim.Config
	// FS tunes the file system (aging etc.).
	FS ffs.Config
}

// TB is an assembled testbed.
type TB struct {
	K         *sim.Kernel
	Net       *netsim.Network
	Device    *disk.Device
	Driver    *disk.Driver
	Cache     *buffercache.Cache
	FS        *ffs.FS
	Server    *nfsserver.Server
	Mount     *nfsclient.Mount
	ClientCPU *sim.CPU

	opts Options
}

// NewScheduler builds a host scheduler by name.
func NewScheduler(name string) (iosched.Scheduler, error) {
	switch name {
	case "", "elevator":
		return iosched.NewElevator(), nil
	case "ncscan":
		return iosched.NewNCSCAN(), nil
	case "fifo":
		return iosched.NewFIFO(), nil
	case "sstf":
		return iosched.NewSSTF(), nil
	default:
		return nil, fmt.Errorf("testbed: unknown scheduler %q", name)
	}
}

// New assembles a testbed. The NFS stack is created but idle until
// Start.
func New(opts Options) (*TB, error) {
	if opts.Disk == "" {
		opts.Disk = SCSI
	}
	if opts.Partition == 0 {
		opts.Partition = 1
	}
	if opts.Partition < 1 || opts.Partition > 4 {
		return nil, fmt.Errorf("testbed: partition %d out of range 1..4", opts.Partition)
	}
	if opts.ServerCacheBlocks == 0 {
		opts.ServerCacheBlocks = 8192
	}

	k := sim.NewKernel(opts.Seed)

	var model *disk.Model
	switch opts.Disk {
	case SCSI:
		model = disk.IBMDDYS36950()
	case IDE:
		model = disk.WD200BB()
	default:
		return nil, fmt.Errorf("testbed: unknown disk %q", opts.Disk)
	}
	dev := disk.NewDevice(k, model)
	if opts.DisableTCQ {
		dev.SetTCQ(false)
	}
	sched, err := NewScheduler(opts.Scheduler)
	if err != nil {
		return nil, err
	}
	driver := disk.NewDriver(k, dev, sched)
	cache := buffercache.New(k, driver, opts.ServerCacheBlocks)

	parts := model.Geo.QuarterPartitions(string(opts.Disk))
	part := parts[opts.Partition-1]
	fsCfg := opts.FS
	if fsCfg.HandleBase == 0 {
		fsCfg.HandleBase = uint64(opts.Partition) << 32
	}
	fsys := ffs.New(k, cache, part, fsCfg)

	// Network: client uncapped, server behind the measured 54 MB/s
	// PCI/DMA path (§4.1).
	net := netsim.New(k, opts.Net)
	serverHost := net.Host("server", 54e6)
	clientHost := net.Host("client", 0)

	srv := nfsserver.New(k, serverHost, opts.Server)
	srv.Export(fsys)

	clientCPU := sim.NewCPU(k)
	clientCPU.SetBackground(opts.BusyProcs)
	mnt := nfsclient.New(k, clientCPU, clientHost, 800, netsim.Addr{Host: "server", Port: nfsserver.Port}, opts.Client)

	return &TB{
		K:         k,
		Net:       net,
		Device:    dev,
		Driver:    driver,
		Cache:     cache,
		FS:        fsys,
		Server:    srv,
		Mount:     mnt,
		ClientCPU: clientCPU,
		opts:      opts,
	}, nil
}

// Start spawns the NFS server and client daemons. Local-only
// experiments (Figures 1-3) need not call it.
func (tb *TB) Start() error {
	tb.Server.Start()
	return tb.Mount.Start()
}

// RootFH returns the export's root handle.
func (tb *TB) RootFH() nfsproto.FH { return tb.Server.RootFH(0) }

// FlushCaches defeats all caching between runs, as the paper does:
// server buffer cache, client block cache, and per-run server state.
func (tb *TB) FlushCaches() {
	tb.Cache.Flush()
	tb.Mount.Flush()
	tb.Server.FlushState()
}

// Options returns the options the testbed was built with.
func (tb *TB) Options() Options { return tb.opts }
