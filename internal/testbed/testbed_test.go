package testbed

import (
	"testing"

	"nfstricks/internal/nfsclient"
)

func TestDefaults(t *testing.T) {
	tb, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Device.Model().Name == "" {
		t.Fatal("no disk model")
	}
	if !tb.Device.TCQ() {
		t.Fatal("SCSI TCQ should default on")
	}
	if tb.Driver.Scheduler().Name() != "elevator" {
		t.Fatalf("default scheduler = %s", tb.Driver.Scheduler().Name())
	}
	if got := tb.FS.Partition().Name; got != "scsi1" {
		t.Fatalf("default partition = %s", got)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{Partition: 5}); err == nil {
		t.Fatal("partition 5 accepted")
	}
	if _, err := New(Options{Disk: "floppy"}); err == nil {
		t.Fatal("unknown disk accepted")
	}
	if _, err := New(Options{Scheduler: "magic"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSchedulerSelection(t *testing.T) {
	for _, name := range []string{"elevator", "ncscan", "fifo", "sstf"} {
		tb, err := New(Options{Scheduler: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.Driver.Scheduler().Name() != name {
			t.Fatalf("scheduler = %s, want %s", tb.Driver.Scheduler().Name(), name)
		}
	}
}

func TestDisableTCQ(t *testing.T) {
	tb, err := New(Options{Disk: SCSI, DisableTCQ: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Device.TCQ() {
		t.Fatal("TCQ still on")
	}
}

func TestIDEHasNoTCQ(t *testing.T) {
	tb, err := New(Options{Disk: IDE})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Device.TCQ() {
		t.Fatal("IDE drive reports TCQ")
	}
}

func TestPartitionsAreDistinct(t *testing.T) {
	var starts []int64
	for part := 1; part <= 4; part++ {
		tb, err := New(Options{Disk: IDE, Partition: part})
		if err != nil {
			t.Fatal(err)
		}
		starts = append(starts, tb.FS.Partition().StartLBA)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatalf("partitions not ascending: %v", starts)
		}
	}
}

func TestBusyProcsSetBackground(t *testing.T) {
	tb, err := New(Options{BusyProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tb.ClientCPU.Background() != 4 {
		t.Fatalf("background = %d", tb.ClientCPU.Background())
	}
}

func TestStartAndFlush(t *testing.T) {
	tb, err := New(Options{Disk: IDE, Client: nfsclient.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	if tb.RootFH() == 0 {
		t.Fatal("zero root handle")
	}
	tb.FlushCaches()
	if tb.Cache.Len() != 0 {
		t.Fatal("server cache not flushed")
	}
	tb.K.Run()
	tb.K.Shutdown()
}
