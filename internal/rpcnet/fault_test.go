package rpcnet

import (
	"errors"
	"testing"
	"time"
)

// TestFaultDeterminism: two injectors with the same seed and config
// make identical decisions for an identical message sequence.
func TestFaultDeterminism(t *testing.T) {
	cfg := FaultConfig{
		Seed: 99, DropProb: 0.2, DupProb: 0.1, DelayProb: 0.15,
		TruncateProb: 0.1, DelayMin: time.Millisecond,
	}
	a, b := NewFaultInjector(cfg), NewFaultInjector(cfg)
	for i := 0; i < 2000; i++ {
		dir, size := i%2, 100+i%500
		actA, actB := a.datagram(dir, size), b.datagram(dir, size)
		if actA != actB {
			t.Fatalf("message %d: decisions diverge: %+v vs %+v", i, actA, actB)
		}
	}
	for dir := DirIn; dir <= DirOut; dir++ {
		sa, sb := a.Stats(dir), b.Stats(dir)
		if sa != sb {
			t.Fatalf("dir %d: counters diverge: %v vs %v", dir, sa, sb)
		}
		if sa.Messages != 1000 {
			t.Fatalf("dir %d: %d messages, want 1000", dir, sa.Messages)
		}
		if sa.Total() == 0 {
			t.Fatalf("dir %d: no faults injected at these probabilities", dir)
		}
	}
	// A different seed must produce a different decision stream.
	cfg.Seed = 100
	d := NewFaultInjector(cfg)
	e := NewFaultInjector(FaultConfig{Seed: 99, DropProb: 0.2, DupProb: 0.1, DelayProb: 0.15, TruncateProb: 0.1, DelayMin: time.Millisecond})
	diverged := false
	for i := 0; i < 2000; i++ {
		if d.datagram(DirIn, 256) != e.datagram(DirIn, 256) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 99 and 100 produced identical decision streams")
	}
}

// TestFaultDropOverridesOthers: a dropped message reports only the
// drop; the other decisions are cleared (but their draws were consumed,
// which determinism above depends on).
func TestFaultDropOverridesOthers(t *testing.T) {
	f := NewFaultInjector(FaultConfig{
		Seed: 5, DropProb: 1, DupProb: 1, DelayProb: 1, TruncateProb: 1,
	})
	for i := 0; i < 100; i++ {
		act := f.datagram(DirOut, 512)
		if !act.drop || act.dup || act.delay != 0 || act.truncate != -1 {
			t.Fatalf("drop=1 action %+v, want pure drop", act)
		}
	}
	s := f.Stats(DirOut)
	if s.Drops != 100 || s.Dups != 0 || s.Delays != 0 || s.Truncates != 0 {
		t.Fatalf("counters %v, want 100 pure drops", s)
	}
}

// TestFaultRecordResetOverridesStall mirrors the datagram rule for TCP.
func TestFaultRecordResetOverridesStall(t *testing.T) {
	f := NewFaultInjector(FaultConfig{Seed: 5, ResetProb: 1, StallProb: 1})
	act := f.record(DirIn)
	if !act.reset || act.stall != 0 {
		t.Fatalf("reset=1 action %+v, want pure reset", act)
	}
	if s := f.Stats(DirIn); s.Resets != 1 || s.Stalls != 0 {
		t.Fatalf("counters %v, want one pure reset", s)
	}
}

// TestNilFaultInjector: every hook treats nil as a perfect network.
func TestNilFaultInjector(t *testing.T) {
	var f *FaultInjector
	if act := f.datagram(DirIn, 100); act.drop || act.dup || act.delay != 0 || act.truncate != -1 {
		t.Fatalf("nil datagram action %+v", act)
	}
	if act := f.record(DirOut); act.reset || act.stall != 0 {
		t.Fatalf("nil record action %+v", act)
	}
	if s := f.Stats(DirIn); s != (FaultStats{}) {
		t.Fatalf("nil stats %v", s)
	}
}

// TestParseFaultSpec: the CLI syntax round-trips into FaultConfig.
func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("drop=0.05,dup=0.01,delay=0.02:1ms-5ms,trunc=0.01,stall=0.05:20ms,reset=0.001")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{
		DropProb: 0.05, DupProb: 0.01,
		DelayProb: 0.02, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
		TruncateProb: 0.01,
		StallProb:    0.05, Stall: 20 * time.Millisecond,
		ResetProb: 0.001,
	}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseFaultSpec("  "); err != nil || cfg.enabled() {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{
		"drop",          // no probability
		"drop=2",        // out of range
		"drop=x",        // not a number
		"flood=0.1",     // unknown fault
		"drop=0.1:20ms", // suffix on a fault that takes none
		"delay=0.1:zzz", // bad duration
		"stall=0.1:zzz", // bad duration
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFaultyUDPServerAllDrops: a server that drops every inbound
// datagram never answers; a plain client times out with
// ErrReplyTimeout, and a Retrier gives up with a major timeout that
// still matches ErrReplyTimeout.
func TestFaultyUDPServerAllDrops(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 3, DropProb: 1})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			t.Error("handler ran despite 100% inbound drop")
			return reply, 0
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("udp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(150 * time.Millisecond)
	if _, err := c.Call(1, []byte("x")); !errors.Is(err, ErrReplyTimeout) {
		t.Fatalf("plain call = %v, want ErrReplyTimeout", err)
	}
	c.SetTimeout(0)
	r := c.NewRetrier(RetryPolicy{MaxTransmits: 3, InitialRTO: 50 * time.Millisecond, MinRTO: 20 * time.Millisecond, Seed: 7})
	_, err = r.Call(1, []byte("y"))
	if !errors.Is(err, ErrMajorTimeout) || !errors.Is(err, ErrReplyTimeout) {
		t.Fatalf("retried call = %v, want ErrMajorTimeout wrapping ErrReplyTimeout", err)
	}
	st := r.Stats()
	if st.MajorTimeouts != 1 || st.Retransmits != 2 {
		t.Fatalf("retry stats %v, want 1 major, 2 retransmits", st)
	}
	if drops := inj.Stats(DirIn).Drops; drops != 4 {
		t.Fatalf("server dropped %d datagrams, want 4 (1 plain + 3 retried)", drops)
	}
}

// TestFaultyClientSideDrops: the injector also plugs into the client —
// with every outbound datagram dropped at the client socket, calls time
// out and the client's own counters show the loss.
func TestFaultyClientSideDrops(t *testing.T) {
	s := startServer(t)
	inj := NewFaultInjector(FaultConfig{Seed: 11, DropProb: 1})
	c, err := DialFault("udp", s.Addr(), 100003, 3, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(150 * time.Millisecond)
	if _, err := c.Call(1, []byte("x")); !errors.Is(err, ErrReplyTimeout) {
		t.Fatalf("call = %v, want ErrReplyTimeout", err)
	}
	if st := inj.Stats(DirOut); st.Drops != 1 {
		t.Fatalf("client outbound stats %v, want 1 drop", st)
	}
}

// TestFaultDuplicateDeliveryIsHarmless: with every inbound datagram
// duplicated at the server, the handler runs twice per call but the
// client's XID demultiplexer discards the second reply — calls still
// return the right answer. (This is exactly the duplicate the DRC
// exists to suppress for non-idempotent work; at the rpcnet layer it
// must simply not wedge anything.)
func TestFaultDuplicateDeliveryIsHarmless(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 13, DupProb: 1})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			reply = append(reply, byte(proc))
			return append(reply, body...), 0
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("udp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		body, err := c.Call(3, []byte{byte(i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(body) != 2 || body[0] != 3 || body[1] != byte(i) {
			t.Fatalf("call %d: reply %v", i, body)
		}
	}
	if dups := inj.Stats(DirIn).Dups; dups != 20 {
		t.Fatalf("%d inbound dups, want 20", dups)
	}
}

// TestFaultTCPStallDelaysButDelivers: a stalled TCP record arrives
// late, not never — the call completes, slower than the stall.
func TestFaultTCPStallDelaysButDelivers(t *testing.T) {
	const stall = 80 * time.Millisecond
	inj := NewFaultInjector(FaultConfig{Seed: 17, StallProb: 1, Stall: stall})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			return append(reply, body...), 0
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Call(1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("stalled call returned in %v, want >= %v", d, stall)
	}
	if st := inj.Stats(DirIn); st.Stalls == 0 {
		t.Fatalf("inbound stats %v, want stalls", st)
	}
}

// TestFaultTCPReset: a reset-injecting server kills the connection; the
// client's call fails rather than hanging.
func TestFaultTCPReset(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 19, ResetProb: 1})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			return append(reply, body...), 0
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(2 * time.Second)
	if _, err := c.Call(1, []byte("doomed")); err == nil {
		t.Fatal("call over reset connection succeeded")
	}
}
