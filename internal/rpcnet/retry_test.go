package rpcnet

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nfstricks/internal/obs"
	"nfstricks/internal/sunrpc"
)

// lossyPolicy keeps retransmission cheap on loopback.
func lossyPolicy(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxTransmits: 12,
		InitialRTO:   50 * time.Millisecond,
		MinRTO:       20 * time.Millisecond,
		MaxRTO:       time.Second,
		Jitter:       0.2,
		Seed:         seed,
	}
}

// TestRetrierRecoversFromLoss: 25% per-direction datagram loss (a 44%
// round-trip failure rate); every call still completes with the right
// answer, via retransmission.
func TestRetrierRecoversFromLoss(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 21, DropProb: 0.25})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			reply = append(reply, byte(proc))
			return append(reply, body...), sunrpc.AcceptSuccess
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("udp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.NewRetrier(lossyPolicy(22))
	for i := 0; i < 60; i++ {
		payload := []byte{byte(i), byte(i >> 8)}
		body, err := r.Call(3, payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(body, append([]byte{3}, payload...)) {
			t.Fatalf("call %d: reply %v", i, body)
		}
	}
	st := r.Stats()
	if st.Calls != 60 {
		t.Fatalf("stats %v, want 60 calls", st)
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions at 25% loss — injector or retry loop not engaged")
	}
	if st.MajorTimeouts != 0 {
		t.Fatalf("%d major timeouts with 12 transmits at 25%% loss", st.MajorTimeouts)
	}
}

// TestRetrierConcurrentCallsUnderLoss: concurrent retried calls on one
// client must demux correctly even as retransmissions interleave.
// (Run under -race.)
func TestRetrierConcurrentCallsUnderLoss(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 23, DropProb: 0.2})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			return append(reply, body...), sunrpc.AcceptSuccess
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("udp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.NewRetrier(lossyPolicy(24))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 15; j++ {
				payload := []byte{byte(g), byte(j), byte(g ^ j)}
				body, err := r.Call(1, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(body, payload) {
					errs <- errors.New("reply routed to wrong retried call")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRetrierMajorTimeout: a silent server exhausts MaxTransmits within
// a bounded wall-clock, and the error names both the abandonment and
// its cause.
func TestRetrierMajorTimeout(t *testing.T) {
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", 1, 1, func(_ uint32, _ []byte, reply []byte) ([]byte, uint32) {
		<-block
		return reply, sunrpc.AcceptSuccess
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	c, err := Dial("udp", s.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.NewRetrier(RetryPolicy{MaxTransmits: 3, InitialRTO: 40 * time.Millisecond, MinRTO: 20 * time.Millisecond, Seed: 31})
	start := time.Now()
	_, err = r.Call(1, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrMajorTimeout) {
		t.Fatalf("err = %v, want ErrMajorTimeout", err)
	}
	if !errors.Is(err, ErrReplyTimeout) {
		t.Fatalf("err = %v, should wrap ErrReplyTimeout as the cause", err)
	}
	// 40 + 80 + 160 = 280ms of waits (plus jitter 0 here); anything
	// over a few seconds means the backoff clamp or loop is wrong.
	if elapsed > 3*time.Second {
		t.Fatalf("major timeout took %v", elapsed)
	}
	st := r.Stats()
	if st.MajorTimeouts != 1 || st.Retransmits != 2 || st.Calls != 1 {
		t.Fatalf("stats %v, want 1 call, 2 retransmits, 1 major", st)
	}
}

// TestRetrierSurvivesServerRestart: the send-failure path. A UDP send
// to a dead port fails at the socket (ECONNREFUSED); the retrier treats
// it like a lost datagram and keeps retransmitting, so when a server
// comes back on the same address mid-call, the call completes.
func TestRetrierSurvivesServerRestart(t *testing.T) {
	s := startServer(t)
	addr := s.Addr()
	c, err := Dial("udp", addr, 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.NewRetrier(RetryPolicy{MaxTransmits: 20, InitialRTO: 50 * time.Millisecond, MinRTO: 40 * time.Millisecond, MaxRTO: 100 * time.Millisecond, Seed: 37})
	if _, err := r.Call(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	done := make(chan error, 1)
	go func() {
		_, err := r.Call(1, []byte("through the outage"))
		done <- err
	}()
	time.Sleep(200 * time.Millisecond)
	s2, err := NewServer(addr, 100003, 3, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := <-done; err != nil {
		t.Fatalf("call through restart failed: %v", err)
	}
	if st := r.Stats(); st.Retransmits == 0 {
		t.Fatalf("stats %v: restart survived without retransmission?", st)
	}
}

// TestRetrierRTTEstimator: the Jacobson update sequence, directly.
func TestRetrierRTTEstimator(t *testing.T) {
	r := &Retrier{p: RetryPolicy{}.filled()}
	r.observe(100 * time.Millisecond)
	if srtt, rttvar := r.RTT(); srtt != 100*time.Millisecond || rttvar != 50*time.Millisecond {
		t.Fatalf("after first sample: srtt=%v rttvar=%v", srtt, rttvar)
	}
	// Second sample 200ms: rttvar = (3*50 + |100-200|)/4 = 62.5ms,
	// srtt = (7*100 + 200)/8 = 112.5ms.
	r.observe(200 * time.Millisecond)
	srtt, rttvar := r.RTT()
	if srtt != 112500*time.Microsecond || rttvar != 62500*time.Microsecond {
		t.Fatalf("after second sample: srtt=%v rttvar=%v", srtt, rttvar)
	}
	// The call RTO for the next call is srtt + 4*rttvar, clamped.
	if rto := r.initialRTO(); rto != 362500*time.Microsecond {
		t.Fatalf("initialRTO = %v, want 362.5ms", rto)
	}
}

// TestRetrierLearnsFastRTO: on a clean loopback path the estimator
// drives the RTO from the 500ms default down to the MinRTO floor.
func TestRetrierLearnsFastRTO(t *testing.T) {
	s := startServer(t)
	c, err := Dial("udp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.NewRetrier(RetryPolicy{MinRTO: 5 * time.Millisecond, Seed: 41})
	for i := 0; i < 30; i++ {
		if _, err := r.Call(1, []byte("ping")); err != nil {
			t.Fatal(err)
		}
	}
	srtt, _ := r.RTT()
	if srtt == 0 {
		t.Fatal("no RTT samples on a clean path")
	}
	if rto := r.initialRTO(); rto >= 500*time.Millisecond {
		t.Fatalf("RTO still %v after 30 clean samples", rto)
	}
}

// TestRetrierJitterBounds: jittered waits stay in [d, d*(1+Jitter)].
func TestRetrierJitterBounds(t *testing.T) {
	r := &Retrier{p: RetryPolicy{Jitter: 0.5}.filled(), rng: rand.New(rand.NewSource(43))}
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := r.jittered(d)
		if j < d || j > d+d/2 {
			t.Fatalf("jittered(%v) = %v, want [%v, %v]", d, j, d, d+d/2)
		}
	}
}

// TestRetrierRegisterObs: the registry-exported counters must match
// Stats() exactly, and the RTO gauge must track the estimator (clamped
// srtt + 4·rttvar once samples exist).
func TestRetrierRegisterObs(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 7, DropProb: 0.25})
	s, err := NewServerInfo("127.0.0.1:0", 100003, 3,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			return append(reply, body...), sunrpc.AcceptSuccess
		}, ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("udp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := c.NewRetrier(lossyPolicy(8))
	reg := obs.NewRegistry()
	r.RegisterObs(reg)

	// Before any call: all counters present and zero, gauge at the
	// clamped InitialRTO.
	snap := reg.Dump()
	for _, name := range []string{
		"rpcnet_retry_calls_total", "rpcnet_retry_retransmits_total",
		"rpcnet_retry_major_timeouts_total", "rpcnet_retry_send_failures_total",
	} {
		v, ok := snap.Counters[name]
		if !ok {
			t.Fatalf("counter %s not registered", name)
		}
		if v != 0 {
			t.Fatalf("%s = %d before any call", name, v)
		}
	}
	if got, want := snap.Gauges["rpcnet_retry_rto_seconds"], lossyPolicy(8).InitialRTO.Seconds(); got != want {
		t.Fatalf("initial rto gauge %v, want %v", got, want)
	}

	for i := 0; i < 40; i++ {
		if _, err := r.Call(3, []byte{byte(i)}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	snap = reg.Dump()
	st := r.Stats()
	if snap.Counters["rpcnet_retry_calls_total"] != st.Calls ||
		snap.Counters["rpcnet_retry_retransmits_total"] != st.Retransmits ||
		snap.Counters["rpcnet_retry_major_timeouts_total"] != st.MajorTimeouts ||
		snap.Counters["rpcnet_retry_send_failures_total"] != st.SendFailures {
		t.Fatalf("registry %v vs Stats %+v", snap.Counters, st)
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions at 25% loss")
	}
	srtt, rttvar := r.RTT()
	if srtt == 0 {
		t.Fatal("no RTT sample after 40 calls")
	}
	want := r.clamp(srtt + 4*rttvar).Seconds()
	if got := snap.Gauges["rpcnet_retry_rto_seconds"]; got != want {
		t.Fatalf("rto gauge %v, want clamp(srtt+4·rttvar) = %v", got, want)
	}
}
