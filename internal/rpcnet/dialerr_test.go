package rpcnet

import (
	"errors"
	"net"
	"os"
	"syscall"
	"testing"
)

// TestDialErrorClassification: ephemeral-port and fd exhaustion dial
// failures are tagged ErrConnExhausted; everything else is not. The
// inputs mirror what net.Dial actually returns (*net.OpError wrapping
// *os.SyscallError).
func TestDialErrorClassification(t *testing.T) {
	wrap := func(errno syscall.Errno) error {
		return &net.OpError{Op: "dial", Net: "tcp",
			Err: os.NewSyscallError("connect", errno)}
	}
	for _, errno := range []syscall.Errno{
		syscall.EADDRNOTAVAIL, syscall.EADDRINUSE, syscall.EMFILE, syscall.ENFILE,
	} {
		if !isResourceExhausted(wrap(errno)) {
			t.Errorf("%v not classified as exhaustion", errno)
		}
	}
	for _, err := range []error{
		wrap(syscall.ECONNREFUSED),
		wrap(syscall.ETIMEDOUT),
		errors.New("some other failure"),
	} {
		if isResourceExhausted(err) {
			t.Errorf("%v wrongly classified as exhaustion", err)
		}
	}
}
