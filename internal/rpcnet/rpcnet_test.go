package rpcnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"nfstricks/internal/sunrpc"
)

// echoHandler returns the body with a marker prefix.
func echoHandler(proc uint32, body []byte) ([]byte, uint32) {
	if proc == 99 {
		return nil, sunrpc.AcceptProcUnavail
	}
	return append([]byte{byte(proc)}, body...), sunrpc.AcceptSuccess
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", 100003, 3, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCallOverUDPAndTCP(t *testing.T) {
	s := startServer(t)
	for _, network := range []string{"udp", "tcp"} {
		c, err := Dial(network, s.Addr(), 100003, 3)
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		body, err := c.Call(7, []byte("payload"))
		if err != nil {
			t.Fatalf("%s call: %v", network, err)
		}
		if !bytes.Equal(body, append([]byte{7}, []byte("payload")...)) {
			t.Fatalf("%s body = %v", network, body)
		}
		c.Close()
	}
}

func TestProcUnavail(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(99, nil); err == nil {
		t.Fatal("proc-unavail call succeeded")
	}
}

func TestProgMismatch(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 200001, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("wrong-program call succeeded")
	}
}

func TestLargePayloadTCP(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 32*1024)
	for i := range big {
		big[i] = byte(i)
	}
	body, err := c.Call(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(big)+1 || !bytes.Equal(body[1:], big) {
		t.Fatalf("large payload mangled: %d bytes", len(body))
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		network := "udp"
		if i%2 == 0 {
			network = "tcp"
		}
		wg.Add(1)
		go func(network string, i int) {
			defer wg.Done()
			c, err := Dial(network, s.Addr(), 100003, 3)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				payload := []byte{byte(i), byte(j)}
				body, err := c.Call(3, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(body[1:], payload) {
					errs <- ErrRPC
					return
				}
			}
		}(network, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDialBadNetwork(t *testing.T) {
	if _, err := Dial("sctp", "127.0.0.1:1", 1, 1); err == nil {
		t.Fatal("bad network accepted")
	}
}

func TestCallTimeout(t *testing.T) {
	// A server that never answers: handler blocks.
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", 1, 1, func(uint32, []byte) ([]byte, uint32) {
		<-block
		return nil, sunrpc.AcceptSuccess
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	c, err := Dial("udp", s.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)
	start := time.Now()
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("blocked call returned")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	c.SetTimeout(500 * time.Millisecond)
	if _, err := c.Call(1, []byte("y")); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}
