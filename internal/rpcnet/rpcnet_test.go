package rpcnet

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nfstricks/internal/sunrpc"
)

// echoHandler returns the body with a marker prefix, appended into the
// server's reply buffer.
func echoHandler(proc uint32, body []byte, reply []byte) ([]byte, uint32) {
	if proc == 99 {
		return reply, sunrpc.AcceptProcUnavail
	}
	reply = append(reply, byte(proc))
	return append(reply, body...), sunrpc.AcceptSuccess
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", 100003, 3, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCallOverUDPAndTCP(t *testing.T) {
	s := startServer(t)
	for _, network := range []string{"udp", "tcp"} {
		c, err := Dial(network, s.Addr(), 100003, 3)
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		body, err := c.Call(7, []byte("payload"))
		if err != nil {
			t.Fatalf("%s call: %v", network, err)
		}
		if !bytes.Equal(body, append([]byte{7}, []byte("payload")...)) {
			t.Fatalf("%s body = %v", network, body)
		}
		c.Close()
	}
}

func TestProcUnavail(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(99, nil); err == nil {
		t.Fatal("proc-unavail call succeeded")
	}
}

func TestProgMismatch(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 200001, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("wrong-program call succeeded")
	}
}

func TestLargePayloadTCP(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 32*1024)
	for i := range big {
		big[i] = byte(i)
	}
	body, err := c.Call(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(big)+1 || !bytes.Equal(body[1:], big) {
		t.Fatalf("large payload mangled: %d bytes", len(body))
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		network := "udp"
		if i%2 == 0 {
			network = "tcp"
		}
		wg.Add(1)
		go func(network string, i int) {
			defer wg.Done()
			c, err := Dial(network, s.Addr(), 100003, 3)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				payload := []byte{byte(i), byte(j)}
				body, err := c.Call(3, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(body[1:], payload) {
					errs <- ErrRPC
					return
				}
			}
		}(network, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPipelinedCallsOneClient issues concurrent calls from many
// goroutines over a single client connection: the XID demultiplexer
// must route every reply to the call that made it, over both
// transports. (Run under -race.)
func TestPipelinedCallsOneClient(t *testing.T) {
	s := startServer(t)
	for _, network := range []string{"udp", "tcp"} {
		c, err := Dial(network, s.Addr(), 100003, 3)
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < 25; j++ {
					payload := []byte{byte(g), byte(j), byte(g ^ j)}
					body, err := c.Call(3, payload)
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(body[1:], payload) {
						errs <- errors.New("reply routed to wrong call")
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", network, err)
		}
		c.Close()
	}
}

// TestPipeliningOverlapsSlowCalls proves calls really overlap: with a
// server that stalls one specific procedure, a slow call must not block
// a fast one issued after it on the same connection.
func TestPipeliningOverlapsSlowCalls(t *testing.T) {
	release := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", 1, 1, func(proc uint32, body []byte, reply []byte) ([]byte, uint32) {
		if proc == 7 {
			<-release
		}
		return append(reply, body...), sunrpc.AcceptSuccess
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial("tcp", s.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(7, []byte("slow"))
		slowDone <- err
	}()
	// The fast call must complete while the slow one is still held.
	if _, err := c.Call(1, []byte("fast")); err != nil {
		t.Fatalf("fast call blocked behind slow call: %v", err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished early: %v", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestCallContextCancel abandons a call via its context; the client
// must return promptly and stay usable for later calls.
func TestCallContextCancel(t *testing.T) {
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", 1, 1, func(proc uint32, body []byte, reply []byte) ([]byte, uint32) {
		if proc == 7 {
			<-block
		}
		return append(reply, body...), sunrpc.AcceptSuccess
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	c, err := Dial("udp", s.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := c.CallContext(ctx, 7, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v", err)
	}
	if _, err := c.Call(1, []byte("after")); err != nil {
		t.Fatalf("client unusable after cancel: %v", err)
	}
}

// TestUDPClientSurvivesServerRestart: a UDP transport error (server
// gone, ICMP port-unreachable) fails the in-flight call but must not
// poison the client — once a server is back on the same port, calls
// succeed again. TCP clients, by contrast, are dead after a stream
// error.
func TestUDPClientSurvivesServerRestart(t *testing.T) {
	s := startServer(t)
	addr := s.Addr()
	c, err := Dial("udp", addr, 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(500 * time.Millisecond)
	if _, err := c.Call(1, []byte("up")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := c.Call(1, []byte("down")); err == nil {
		t.Fatal("call to stopped server succeeded")
	}
	// Restart on the same address; the old client must recover.
	s2, err := NewServer(addr, 100003, 3, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = c.Call(1, []byte("back")); lastErr == nil {
			return
		}
	}
	t.Fatalf("UDP client never recovered after server restart: %v", lastErr)
}

// TestCallAfterClose: calls on a closed client fail fast.
func TestCallAfterClose(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(1, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call on closed client returned %v", err)
	}
}

func TestDialBadNetwork(t *testing.T) {
	if _, err := Dial("sctp", "127.0.0.1:1", 1, 1); err == nil {
		t.Fatal("bad network accepted")
	}
}

func TestCallTimeout(t *testing.T) {
	// A server that never answers: handler blocks.
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", 1, 1, func(_ uint32, _ []byte, reply []byte) ([]byte, uint32) {
		<-block
		return reply, sunrpc.AcceptSuccess
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	c, err := Dial("udp", s.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)
	start := time.Now()
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("blocked call returned")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not honored")
	}
}

// TestZeroTimeoutDisarmsWriteDeadline: switching a client from a short
// timeout to SetTimeout(0) must clear the socket write deadline armed
// by the earlier sends — otherwise a send after the old deadline passes
// fails a healthy TCP transport with a spurious i/o timeout.
func TestZeroTimeoutDisarmsWriteDeadline(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)
	if _, err := c.Call(1, []byte("armed")); err != nil {
		t.Fatal(err)
	}
	c.SetTimeout(0)
	time.Sleep(250 * time.Millisecond) // let the armed deadline lapse
	if _, err := c.Call(1, []byte("after")); err != nil {
		t.Fatalf("call after disarming timeout failed: %v", err)
	}
}

// tapSink collects tap events under a lock (taps run concurrently).
type tapSink struct {
	mu  sync.Mutex
	evs []TapEvent
}

func (ts *tapSink) tap(ev TapEvent) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	// Body/Result alias pooled buffers; a real tap parses them in
	// place, this test copies to inspect later.
	ev.Body = append([]byte(nil), ev.Body...)
	ev.Result = append([]byte(nil), ev.Result...)
	ts.evs = append(ts.evs, ev)
}

func (ts *tapSink) events() []TapEvent {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]TapEvent(nil), ts.evs...)
}

// TestServerTap: every served RPC is observed with its procedure,
// accept status, body and result, per-connection stream ids are stable,
// and distinct connections get distinct ids.
func TestServerTap(t *testing.T) {
	for _, network := range []string{"udp", "tcp"} {
		var sink tapSink
		s, err := NewServerTap("127.0.0.1:0", 100003, 3, echoHandler, sink.tap)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := Dial(network, s.Addr(), 100003, 3)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Dial(network, s.Addr(), 100003, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := c1.Call(3, []byte{byte(i)}); err != nil {
				t.Fatalf("%s: %v", network, err)
			}
		}
		if _, err := c2.Call(7, []byte("two")); err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		c2.Call(99, nil) // proc-unavail still taps, with its accept stat
		c1.Close()
		c2.Close()
		s.Close()

		evs := sink.events()
		if len(evs) != 7 {
			t.Fatalf("%s: %d events, want 7", network, len(evs))
		}
		streams := make(map[uint32]int)
		var unavail bool
		for _, ev := range evs {
			streams[ev.Stream]++
			if ev.When.IsZero() || ev.Latency < 0 {
				t.Fatalf("%s: bad timing %+v", network, ev)
			}
			switch ev.Proc {
			case 3:
				if ev.Stat != sunrpc.AcceptSuccess || len(ev.Body) != 1 ||
					!bytes.Equal(ev.Result, append([]byte{3}, ev.Body...)) {
					t.Fatalf("%s: proc 3 event %+v", network, ev)
				}
			case 7:
				if string(ev.Body) != "two" {
					t.Fatalf("%s: proc 7 body %q", network, ev.Body)
				}
			case 99:
				if ev.Stat != sunrpc.AcceptProcUnavail {
					t.Fatalf("%s: proc 99 stat %d", network, ev.Stat)
				}
				unavail = true
			}
		}
		if !unavail {
			t.Fatalf("%s: proc-unavail call not tapped", network)
		}
		if len(streams) != 2 {
			t.Fatalf("%s: %d stream ids, want 2 (one per connection): %v", network, len(streams), streams)
		}
		for id, n := range streams {
			if n != 5 && n != 2 {
				t.Fatalf("%s: stream %d has %d events, want 5 or 2", network, id, n)
			}
		}
	}
}

// TestCloseDrainsInFlightRequests: Close must wait for requests whose
// handlers are still running, so a shutdown (final stats, trace flush)
// can trust it saw every served RPC. The tap is the observer: its event
// must be emitted before Close returns.
func TestCloseDrainsInFlightRequests(t *testing.T) {
	for _, network := range []string{"udp", "tcp"} {
		var sink tapSink
		entered := make(chan struct{}, 1)
		s, err := NewServerTap("127.0.0.1:0", 1, 1, func(_ uint32, _ []byte, reply []byte) ([]byte, uint32) {
			entered <- struct{}{}
			time.Sleep(100 * time.Millisecond)
			return reply, sunrpc.AcceptSuccess
		}, sink.tap)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(network, s.Addr(), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := c.Go(1, []byte("slow"))
		<-entered // the handler is running
		s.Close() // must block until the handler (and its tap) finish
		if evs := sink.events(); len(evs) != 1 {
			t.Fatalf("%s: %d tap events after Close, want 1 (in-flight request dropped)", network, len(evs))
		}
		p.Wait(time.Second) // reply may or may not make it out; either way, no hang
		c.Close()
	}
}

// TestGoPipelinesInOrder: Go issues calls without waiting; replies
// collected afterwards match their requests.
func TestGoPipelinesInOrder(t *testing.T) {
	s := startServer(t)
	for _, network := range []string{"udp", "tcp"} {
		c, err := Dial(network, s.Addr(), 100003, 3)
		if err != nil {
			t.Fatal(err)
		}
		const n = 200
		pending := make([]*Pending, n)
		for i := range pending {
			pending[i] = c.Go(3, []byte{byte(i), byte(i >> 8)})
		}
		for i, p := range pending {
			body, err := p.Wait(5 * time.Second)
			if err != nil {
				t.Fatalf("%s call %d: %v", network, i, err)
			}
			if !bytes.Equal(body, []byte{3, byte(i), byte(i >> 8)}) {
				t.Fatalf("%s call %d: reply %v", network, i, body)
			}
		}
		c.Close()
	}
}

// TestGoWaitTimeoutAndClosed: Wait times out on a silent server; Go on
// a closed client fails immediately; double Wait is an error, not a
// hang.
func TestGoWaitTimeoutAndClosed(t *testing.T) {
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", 1, 1, func(_ uint32, _ []byte, reply []byte) ([]byte, uint32) {
		<-block
		return reply, sunrpc.AcceptSuccess
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	c, err := Dial("udp", s.Addr(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Go(1, nil)
	if _, err := p.Wait(100 * time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on silent server = %v", err)
	}
	if _, err := p.Wait(time.Second); err == nil {
		t.Fatal("second Wait succeeded")
	}
	c.Close()
	if _, err := c.Go(1, nil).Wait(time.Second); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Go on closed client = %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := startServer(t)
	c, err := Dial("tcp", s.Addr(), 100003, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	c.SetTimeout(500 * time.Millisecond)
	if _, err := c.Call(1, []byte("y")); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}
