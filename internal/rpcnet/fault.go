// Fault injection for the live RPC path. The paper's UDP-vs-TCP
// comparisons are really comparisons of failure behaviour — what
// happens when a datagram is lost and the client retransmits — but a
// loopback socket never loses anything. FaultInjector makes the live
// transports lossy on purpose: a deterministic, seeded policy pluggable
// into both the server and the client, deciding per message whether to
// drop, delay, duplicate or truncate a datagram (UDP) or to stall
// mid-record or reset the connection (TCP), with per-direction counters
// so every experiment can report exactly what faults were injected —
// the controlled fault load the benchmarking-crimes literature demands
// instead of "we ran it on a busy network".

package rpcnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes a FaultInjector. All probabilities are per
// message (a datagram on UDP, a record on TCP), applied independently
// in each direction the injector is wired into. The zero value injects
// nothing.
type FaultConfig struct {
	// Seed makes the decision sequence reproducible (0 = seed 1).
	// Decisions are drawn in message-arrival order; under concurrency
	// the interleaving of messages is the scheduler's, but a single
	// serialized stream replays bit-identically.
	Seed int64

	// UDP datagram faults.
	DropProb     float64       // lose the datagram entirely
	DupProb      float64       // deliver/send it twice
	DelayProb    float64       // hold it for DelayMin..DelayMax (also reorders)
	DelayMin     time.Duration // default 1ms
	DelayMax     time.Duration // default 4*DelayMin
	TruncateProb float64       // cut the datagram short: garbage on the wire

	// TCP record faults.
	StallProb float64       // pause mid-record for Stall (a congested path)
	Stall     time.Duration // default 50ms
	ResetProb float64       // close the connection instead of completing the record
}

// enabled reports whether any fault has nonzero probability.
func (c FaultConfig) enabled() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.DelayProb > 0 ||
		c.TruncateProb > 0 || c.StallProb > 0 || c.ResetProb > 0
}

// Directions for FaultStats: inbound is what the injector's owner
// receives, outbound what it sends.
const (
	DirIn = iota
	DirOut
)

// FaultStats counts injected faults in one direction. Messages counts
// every message the injector examined, faulted or not.
type FaultStats struct {
	Messages  int64
	Drops     int64
	Dups      int64
	Delays    int64
	Truncates int64
	Stalls    int64
	Resets    int64
}

// Total sums the injected faults (Messages excluded).
func (s FaultStats) Total() int64 {
	return s.Drops + s.Dups + s.Delays + s.Truncates + s.Stalls + s.Resets
}

// String renders the counters compactly.
func (s FaultStats) String() string {
	return fmt.Sprintf("msgs=%d drop=%d dup=%d delay=%d trunc=%d stall=%d reset=%d",
		s.Messages, s.Drops, s.Dups, s.Delays, s.Truncates, s.Stalls, s.Resets)
}

// faultCounters is the atomic backing of one direction's FaultStats.
type faultCounters struct {
	messages, drops, dups, delays, truncates, stalls, resets atomic.Int64
}

func (c *faultCounters) snapshot() FaultStats {
	return FaultStats{
		Messages:  c.messages.Load(),
		Drops:     c.drops.Load(),
		Dups:      c.dups.Load(),
		Delays:    c.delays.Load(),
		Truncates: c.truncates.Load(),
		Stalls:    c.stalls.Load(),
		Resets:    c.resets.Load(),
	}
}

// FaultInjector draws per-message fault decisions from a seeded stream.
// One injector may be shared by a server and any number of clients; the
// decision stream is serialized under a mutex, the counters are
// atomics. Safe for concurrent use.
type FaultInjector struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	dirs [2]faultCounters
}

// NewFaultInjector builds an injector for cfg (nil-safe to not build:
// every rpcnet hook treats a nil *FaultInjector as a perfect network).
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.DelayMin <= 0 {
		cfg.DelayMin = time.Millisecond
	}
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = 4 * cfg.DelayMin
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Config returns the injector's (defaulted) configuration.
func (f *FaultInjector) Config() FaultConfig { return f.cfg }

// Stats returns one direction's counters (DirIn or DirOut).
func (f *FaultInjector) Stats(dir int) FaultStats {
	if f == nil {
		return FaultStats{}
	}
	return f.dirs[dir&1].snapshot()
}

// faultAction is one message's fate. The zero value delivers the
// message untouched.
type faultAction struct {
	drop     bool
	dup      bool
	delay    time.Duration
	truncate int // new length, -1 = intact
	stall    time.Duration
	reset    bool
}

// datagram decides a UDP message's fate. size is the datagram length
// (bounds the truncation point).
func (f *FaultInjector) datagram(dir, size int) faultAction {
	act := faultAction{truncate: -1}
	if f == nil {
		return act
	}
	c := &f.dirs[dir&1]
	c.messages.Add(1)
	f.mu.Lock()
	// One draw per configured fault class, in fixed order, so the
	// decision stream depends only on the seed and message count.
	if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
		act.drop = true
	}
	if f.cfg.DupProb > 0 && f.rng.Float64() < f.cfg.DupProb {
		act.dup = true
	}
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		span := f.cfg.DelayMax - f.cfg.DelayMin
		act.delay = f.cfg.DelayMin
		if span > 0 {
			act.delay += time.Duration(f.rng.Int63n(int64(span)))
		}
	}
	if f.cfg.TruncateProb > 0 && size > 0 && f.rng.Float64() < f.cfg.TruncateProb {
		act.truncate = f.rng.Intn(size)
	}
	f.mu.Unlock()
	if act.drop {
		// A dropped message is dropped; the other decisions were still
		// drawn (the stream shape must not depend on outcomes).
		act.dup, act.delay, act.truncate = false, 0, -1
		c.drops.Add(1)
		return act
	}
	if act.dup {
		c.dups.Add(1)
	}
	if act.delay > 0 {
		c.delays.Add(1)
	}
	if act.truncate >= 0 {
		c.truncates.Add(1)
	}
	return act
}

// record decides a TCP record's fate.
func (f *FaultInjector) record(dir int) faultAction {
	act := faultAction{truncate: -1}
	if f == nil {
		return act
	}
	c := &f.dirs[dir&1]
	c.messages.Add(1)
	f.mu.Lock()
	if f.cfg.ResetProb > 0 && f.rng.Float64() < f.cfg.ResetProb {
		act.reset = true
	}
	if f.cfg.StallProb > 0 && f.rng.Float64() < f.cfg.StallProb {
		act.stall = f.cfg.Stall
	}
	f.mu.Unlock()
	if act.reset {
		act.stall = 0
		c.resets.Add(1)
		return act
	}
	if act.stall > 0 {
		c.stalls.Add(1)
	}
	return act
}

// ParseFaultSpec parses a comma-separated fault specification, the CLI
// syntax of -fault:
//
//	drop=0.05,dup=0.01,delay=0.02:1ms-5ms,trunc=0.01,stall=0.05:20ms,reset=0.001
//
// Each clause is fault=probability; delay and stall accept an optional
// :duration suffix (delay takes a min-max range). An empty string is a
// perfect network.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return cfg, fmt.Errorf("rpcnet: fault clause %q: want fault=prob", clause)
		}
		val, extra, hasExtra := strings.Cut(val, ":")
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return cfg, fmt.Errorf("rpcnet: fault %s: bad probability %q", name, val)
		}
		switch name {
		case "drop":
			cfg.DropProb = p
		case "dup":
			cfg.DupProb = p
		case "delay":
			cfg.DelayProb = p
			if hasExtra {
				lo, hi, isRange := strings.Cut(extra, "-")
				if cfg.DelayMin, err = time.ParseDuration(lo); err != nil {
					return cfg, fmt.Errorf("rpcnet: fault delay: bad duration %q", lo)
				}
				if isRange {
					if cfg.DelayMax, err = time.ParseDuration(hi); err != nil {
						return cfg, fmt.Errorf("rpcnet: fault delay: bad duration %q", hi)
					}
				}
				hasExtra = false
			}
		case "trunc":
			cfg.TruncateProb = p
		case "stall":
			cfg.StallProb = p
			if hasExtra {
				if cfg.Stall, err = time.ParseDuration(extra); err != nil {
					return cfg, fmt.Errorf("rpcnet: fault stall: bad duration %q", extra)
				}
				hasExtra = false
			}
		case "reset":
			cfg.ResetProb = p
		default:
			return cfg, fmt.Errorf("rpcnet: unknown fault %q (want drop, dup, delay, trunc, stall or reset)", name)
		}
		if hasExtra {
			return cfg, fmt.Errorf("rpcnet: fault %s takes no :%s suffix", name, extra)
		}
	}
	return cfg, nil
}
