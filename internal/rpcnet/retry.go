// The unified client retry layer. NFS-over-UDP's reliability IS this
// loop: the transport never retransmits, so the RPC client must —
// resend the same call under the same XID, back off exponentially, and
// give up ("major timeout", the kernel client's term) after enough
// rounds. The initial wait comes from a Jacobson-style RTT estimator
// (srtt/rttvar, RTO = srtt + 4·rttvar) with Karn's rule (never sample
// RTT from a call that was retransmitted — the reply's provenance is
// ambiguous), so a fast loopback path retries in milliseconds while a
// slow path isn't spammed. Same-XID retransmission is the contract the
// server's duplicate request cache matches on; this layer replaces the
// ad-hoc retransmit loop that used to live inside memfs.WriteBehind.

package rpcnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nfstricks/internal/obs"
)

// ErrMajorTimeout marks a call abandoned after RetryPolicy.MaxTransmits
// transmissions went unanswered. It wraps the final round's error, so
// errors.Is also matches ErrReplyTimeout (lossy/silent path) or
// ErrSendFailed (dead server) — whichever ended the call.
var ErrMajorTimeout = errors.New("rpcnet: major timeout")

// RetryPolicy parameterizes a Retrier. The zero value gets kernel-ish
// defaults: 5 transmissions, 500ms initial RTO before any RTT sample,
// RTO clamped to [100ms, 10s], 10% jitter.
type RetryPolicy struct {
	// MaxTransmits is the total number of transmissions per call (the
	// original plus retransmissions) before a major timeout.
	MaxTransmits int
	// InitialRTO is used until the estimator has an RTT sample.
	InitialRTO time.Duration
	// MinRTO and MaxRTO clamp every wait, estimated or backed off.
	MinRTO, MaxRTO time.Duration
	// Jitter spreads each wait uniformly over [rto, rto*(1+Jitter)] so
	// concurrent losers don't retransmit in lockstep.
	Jitter float64
	// Seed makes the jitter sequence reproducible (0 = seed 1).
	Seed int64
}

func (p RetryPolicy) filled() RetryPolicy {
	if p.MaxTransmits <= 0 {
		p.MaxTransmits = 5
	}
	if p.InitialRTO <= 0 {
		p.InitialRTO = 500 * time.Millisecond
	}
	if p.MinRTO <= 0 {
		p.MinRTO = 100 * time.Millisecond
	}
	if p.MaxRTO <= 0 {
		p.MaxRTO = 10 * time.Second
	}
	if p.MaxRTO < p.MinRTO {
		p.MaxRTO = p.MinRTO
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// RetryStats counts a Retrier's activity.
type RetryStats struct {
	Calls         int64 // calls issued through the retrier
	Retransmits   int64 // extra transmissions beyond the first
	MajorTimeouts int64 // calls abandoned after MaxTransmits
	SendFailures  int64 // transmissions that died at the socket
}

// String renders the counters compactly.
func (s RetryStats) String() string {
	return fmt.Sprintf("calls=%d retrans=%d major=%d sendfail=%d",
		s.Calls, s.Retransmits, s.MajorTimeouts, s.SendFailures)
}

// Retrier performs RPCs with retransmission on one Client. Safe for
// concurrent use; concurrent calls pipeline exactly like Client.Call,
// each with its own retransmit schedule. The RTT estimate is shared —
// one path, one estimator.
type Retrier struct {
	c *Client
	p RetryPolicy

	mu           sync.Mutex
	rng          *rand.Rand
	srtt, rttvar time.Duration // 0 srtt = no sample yet

	calls, retransmits, majors, sendFails atomic.Int64
}

// NewRetrier wraps the client in a retry layer with the given policy.
func (c *Client) NewRetrier(p RetryPolicy) *Retrier {
	p = p.filled()
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Retrier{c: c, p: p, rng: rand.New(rand.NewSource(seed))}
}

// Policy returns the retrier's (defaulted) policy.
func (r *Retrier) Policy() RetryPolicy { return r.p }

// Stats returns a snapshot of the retrier's counters.
func (r *Retrier) Stats() RetryStats {
	return RetryStats{
		Calls:         r.calls.Load(),
		Retransmits:   r.retransmits.Load(),
		MajorTimeouts: r.majors.Load(),
		SendFailures:  r.sendFails.Load(),
	}
}

// RegisterObs exposes the retrier's counters and its current
// (clamped) retransmission timeout in a metrics registry. The
// counters are CounterFuncs over the same atomics Stats() reads, so a
// scrape mid-experiment is exact; the RTO gauge is what the next
// fresh call would wait — srtt + 4·rttvar clamped to the policy
// window, or InitialRTO before the first sample. Fault-path cells
// register their retrier here so a run's retransmit story lands in
// /metrics next to the throughput it explains.
func (r *Retrier) RegisterObs(reg *obs.Registry) {
	reg.CounterFunc("rpcnet_retry_calls_total", r.calls.Load)
	reg.CounterFunc("rpcnet_retry_retransmits_total", r.retransmits.Load)
	reg.CounterFunc("rpcnet_retry_major_timeouts_total", r.majors.Load)
	reg.CounterFunc("rpcnet_retry_send_failures_total", r.sendFails.Load)
	reg.GaugeFunc("rpcnet_retry_rto_seconds", func() float64 {
		return r.initialRTO().Seconds()
	})
}

// RTT returns the estimator state: smoothed RTT and variance (both zero
// before the first sample).
func (r *Retrier) RTT() (srtt, rttvar time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srtt, r.rttvar
}

// observe feeds one clean RTT sample to the Jacobson estimator.
func (r *Retrier) observe(rtt time.Duration) {
	r.mu.Lock()
	if r.srtt == 0 {
		r.srtt = rtt
		r.rttvar = rtt / 2
	} else {
		d := r.srtt - rtt
		if d < 0 {
			d = -d
		}
		r.rttvar = (3*r.rttvar + d) / 4
		r.srtt = (7*r.srtt + rtt) / 8
	}
	r.mu.Unlock()
}

// clamp bounds a wait to the policy window.
func (r *Retrier) clamp(d time.Duration) time.Duration {
	if d < r.p.MinRTO {
		return r.p.MinRTO
	}
	if d > r.p.MaxRTO {
		return r.p.MaxRTO
	}
	return d
}

// initialRTO computes a fresh call's first wait from the estimator.
func (r *Retrier) initialRTO() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.srtt == 0 {
		return r.clamp(r.p.InitialRTO)
	}
	return r.clamp(r.srtt + 4*r.rttvar)
}

// jittered spreads d over [d, d*(1+Jitter)].
func (r *Retrier) jittered(d time.Duration) time.Duration {
	if r.p.Jitter <= 0 {
		return d
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return d + time.Duration(f*r.p.Jitter*float64(d))
}

// Call performs one RPC with retransmission: up to MaxTransmits sends
// of the same XID, waiting an RTT-estimated, exponentially backed-off,
// jittered interval after each. A send failure (ErrSendFailed — e.g.
// ECONNREFUSED from a restarting server) is retried on the same
// schedule rather than returned: on UDP it is no more final than a
// lost datagram. Exhaustion returns an error wrapping ErrMajorTimeout
// and the final round's cause.
func (r *Retrier) Call(proc uint32, args []byte) ([]byte, error) {
	r.calls.Add(1)
	c := r.c
	xid := c.xid.Add(1)
	ch, err := c.register(xid)
	if err != nil {
		return nil, err
	}
	rto := r.initialRTO()
	retransmitted := false
	lastCause := error(nil)
	for attempt := 0; attempt < r.p.MaxTransmits; attempt++ {
		if attempt > 0 {
			r.retransmits.Add(1)
			retransmitted = true
		}
		// Each transmission re-marshals the call: the writer recycles
		// send buffers after each send, but the XID — the identity the
		// server's DRC matches on — is the same every time.
		bp := c.marshalCallXID(xid, proc, args)
		sent := time.Now()
		select {
		case c.sendCh <- wireMsg{xid: xid, buf: bp}:
		case <-c.closeCh:
			putBuf(bp)
			if c.unregister(xid) {
				replyChans.Put(ch)
			}
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		t := acquireTimer(r.jittered(rto))
		select {
		case reply := <-ch:
			releaseTimer(t)
			if reply.err != nil && errors.Is(reply.err, ErrSendFailed) && !c.isClosed() {
				// The datagram died at the socket; failOne consumed the
				// registration, so re-arm it and run the same backoff a
				// lost datagram would get (the peer may be rebooting).
				r.sendFails.Add(1)
				lastCause = reply.err
				if err := c.reregister(xid, ch); err != nil {
					replyChans.Put(ch)
					return nil, err
				}
				time.Sleep(r.jittered(rto))
				rto = r.clamp(rto * 2)
				continue
			}
			// Terminal: a real reply, an RPC-level reject, or a dead
			// transport. The channel's one send is consumed — recycle.
			replyChans.Put(ch)
			if reply.err == nil && !retransmitted {
				// Karn's rule: only calls answered on their first
				// transmission yield an RTT sample.
				r.observe(time.Since(sent))
			}
			return reply.body, reply.err
		case <-t.C:
			lastCause = fmt.Errorf("%w: no reply within %v", ErrReplyTimeout, rto)
			rto = r.clamp(rto * 2)
		}
	}
	r.majors.Add(1)
	if c.unregister(xid) {
		replyChans.Put(ch)
	}
	return nil, fmt.Errorf("%w after %d transmits: %w", ErrMajorTimeout, r.p.MaxTransmits, lastCause)
}
