// Package rpcnet runs ONC RPC over real sockets (UDP and TCP with
// record marking) using the same wire encodings as the simulator. It
// exists to prove the protocol stack against an actual network path and
// to make the library usable as a tiny userspace NFS-like file service
// (see internal/memfs and cmd/nfsserve).
package rpcnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nfstricks/internal/obs"
	"nfstricks/internal/sunrpc"
)

// maxUDPMessage bounds datagram buffers (rsize 32 KB + headers).
const maxUDPMessage = 64 * 1024

// Handler serves one RPC call: given the procedure number, the
// XDR-encoded argument body and the partially built reply, it appends
// the XDR-encoded result to reply and returns the extended slice plus
// an accept status. Appending into the caller's buffer — which already
// holds the record mark and RPC header — is what makes the reply path
// single-copy: a READ payload moves from storage to the wire buffer
// exactly once.
//
// body may alias a pooled receive buffer and is valid only for the
// duration of the call; handlers must not retain it (or views decoded
// from it) after returning. Handlers must only append to reply and must
// be safe for concurrent use.
type Handler func(proc uint32, body []byte, reply []byte) ([]byte, uint32)

// CallInfo identifies one call on the wire: which client sent it and
// under which XID. A duplicate request cache needs exactly this —
// (client, XID) is the retransmission identity ONC RPC gives us.
type CallInfo struct {
	// XID is the call's transaction id from the RPC header.
	XID uint32
	// Client is the peer address: the datagram source on UDP, the
	// connection's remote address on TCP.
	Client netip.AddrPort
	// TCP reports the transport (false = UDP).
	TCP bool
	// Span is the request's latency span, nil unless the server was
	// built with ServerOptions.Spans. Handlers mark the stages they own
	// (obs.Span methods are nil-safe, so no guard is needed); the server
	// finishes the span after the reply's socket write.
	Span *obs.Span
}

// InfoHandler is Handler plus the call's wire identity. Returning
// StatDrop as the accept status suppresses the reply entirely — the
// server behaves as if the request were lost, which is how a duplicate
// request cache answers a retransmission whose original is still
// executing.
type InfoHandler func(info CallInfo, proc uint32, body []byte, reply []byte) ([]byte, uint32)

// StatDrop is the sentinel accept status an InfoHandler returns to
// drop a call without replying. It never appears on the wire.
const StatDrop = ^uint32(0)

// wireBufs is the message arena: recycled buffers for everything that
// crosses a socket — datagrams read, TCP records read, calls and
// replies marshalled. Entries start at the maximum wire size
// (maxUDPMessage) and, when an append outgrows one, the grown storage
// is what returns to the pool, so entries converge on the true peak
// wire size instead of being re-allocated per message.
var wireBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, maxUDPMessage)
		return &b
	},
}

// getBuf fetches a zero-length arena buffer.
func getBuf() *[]byte { return wireBufs.Get().(*[]byte) }

// putBuf recycles an arena buffer. The caller must be done with every
// view into it.
func putBuf(b *[]byte) {
	*b = (*b)[:0]
	wireBufs.Put(b)
}

// TapEvent describes one served RPC to a capture tap: when the request
// arrived, which client stream carried it, what was called, how the
// server answered and how long service took. Body and Result alias
// pooled wire buffers and are valid only for the duration of the tap
// call — taps must parse what they need before returning, never retain
// the slices.
type TapEvent struct {
	// Stream identifies the client connection: TCP connections get one
	// id each for their lifetime, UDP peers one id per distinct source
	// address. Ids are unique within a Server, never reused.
	Stream uint32
	// XID is the call's transaction id — the key a capture needs to
	// recognize a retransmission (same stream, same XID, again).
	XID uint32
	// When is the request's arrival time (read off the socket).
	When time.Time
	// Latency is the service time: handler plus decode, excluding the
	// reply's socket write.
	Latency time.Duration
	// Proc is the procedure number from the call header.
	Proc uint32
	// Stat is the RPC accept status of the reply.
	Stat uint32
	// Body is the XDR argument payload of the call.
	Body []byte
	// Result is the XDR result the handler appended (nil when the call
	// was rejected before dispatch, e.g. program mismatch).
	Result []byte
}

// Tap observes served RPCs for trace capture. It is called after the
// handler returns, concurrently from the serving goroutines, so
// implementations must be safe for concurrent use. A nil Tap on the
// server costs one pointer check per request — capture is free when
// disabled.
type Tap func(ev TapEvent)

// Server serves one RPC program on a UDP socket and a TCP listener
// bound to the same address.
type Server struct {
	prog, vers uint32
	handler    InfoHandler
	tap        Tap
	faults     *FaultInjector // nil = perfect network
	spans      *obs.SpanTable // nil = no span recording

	udp *net.UDPConn
	tcp net.Listener

	// nextStream allocates tap stream ids; udpStreams maps datagram
	// peers to theirs (only touched when a tap is installed).
	nextStream atomic.Uint32
	streamMu   sync.Mutex
	udpStreams map[netip.AddrPort]uint32

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer binds addr (e.g. "127.0.0.1:0") for program prog version
// vers and starts serving. Close shuts it down.
func NewServer(addr string, prog, vers uint32, handler Handler) (*Server, error) {
	return NewServerTap(addr, prog, vers, handler, nil)
}

// NewServerTap is NewServer with a capture tap observing every served
// RPC (see Tap). A nil tap is exactly NewServer.
func NewServerTap(addr string, prog, vers uint32, handler Handler, tap Tap) (*Server, error) {
	return NewServerInfo(addr, prog, vers,
		func(_ CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
			return handler(proc, body, reply)
		},
		ServerOptions{Tap: tap})
}

// ServerOptions carries the optional knobs of NewServerInfo. The zero
// value is a plain server: no capture, perfect network.
type ServerOptions struct {
	// Tap observes every served RPC (see Tap).
	Tap Tap
	// Faults, when non-nil, injects faults on both wire directions of
	// this server: inbound requests and outbound replies.
	Faults *FaultInjector
	// Spans, when non-nil, records a per-request stage span for every
	// call: recv (socket read to decode, queueing and injected holds
	// included), decode, the handler's own stages (via CallInfo.Span),
	// and the reply's socket write. Dropped calls (garbage, StatDrop)
	// are discarded unrecorded.
	Spans *obs.SpanTable
}

// NewServerInfo is the full-width constructor: an InfoHandler that sees
// each call's wire identity (and may drop calls via StatDrop), plus
// options for capture and fault injection.
func NewServerInfo(addr string, prog, vers uint32, handler InfoHandler, opts ServerOptions) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	udp, tcp, err := bindBoth(udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		prog: prog, vers: vers, handler: handler, tap: opts.Tap,
		faults: opts.Faults, spans: opts.Spans,
		udp: udp, tcp: tcp,
		conns: make(map[net.Conn]struct{}),
	}
	if s.tap != nil {
		s.udpStreams = make(map[netip.AddrPort]uint32)
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s, nil
}

// maxUDPStreams bounds the peer→stream-id map: a long-running traced
// server facing ephemeral-port churn must not grow it forever. At the
// cap the map is reset; ids stay unique (never reused), so a peer that
// spans a reset continues as a new stream — for trace consumers that is
// a connection epoch, same as a TCP reconnect.
const maxUDPStreams = 65536

// udpStream resolves the tap stream id for a datagram peer.
func (s *Server) udpStream(from *net.UDPAddr) uint32 {
	key := from.AddrPort()
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	id, ok := s.udpStreams[key]
	if !ok {
		if len(s.udpStreams) >= maxUDPStreams {
			s.udpStreams = make(map[netip.AddrPort]uint32)
		}
		id = s.nextStream.Add(1)
		s.udpStreams[key] = id
	}
	return id
}

// bindBoth acquires a UDP socket and a TCP listener on the same port.
// With an explicit port one attempt is made; with port 0 the kernel
// picks the UDP port, and since the matching TCP port may independently
// be in use (e.g. as some client's ephemeral port), the pair is retried
// on a fresh port a few times before giving up.
func bindBoth(udpAddr *net.UDPAddr) (*net.UDPConn, net.Listener, error) {
	attempts := 1
	if udpAddr.Port == 0 {
		attempts = 16
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		udp, err := net.ListenUDP("udp", udpAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("rpcnet: %w", err)
		}
		// A server socket facing pipelined writers sees bursts of
		// near-wsize datagrams; the kernel default receive buffer
		// (~200 KB) drops part of such a burst. Ask for more — the
		// kernel caps the request at rmem_max, and clients recover
		// from any residual loss by retransmitting (UDP NFS's
		// contract), so a failure here is not an error.
		udp.SetReadBuffer(udpReadBuffer)
		tcp, err := net.Listen("tcp", udp.LocalAddr().String())
		if err == nil {
			return udp, tcp, nil
		}
		udp.Close()
		lastErr = err
	}
	return nil, nil, fmt.Errorf("rpcnet: %w", lastErr)
}

// udpReadBuffer is the receive buffer requested for UDP sockets (the
// kernel may cap it lower).
const udpReadBuffer = 4 << 20

// Addr returns the bound address (identical for UDP and TCP).
func (s *Server) Addr() string { return s.udp.LocalAddr().String() }

// Close stops the server and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.udp.Close()
	s.tcp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	for {
		// Each datagram lands in its own pooled buffer, so handing it to
		// the serving goroutine needs no copy; the buffer is recycled
		// once the reply hits the socket.
		bp := getBuf()
		buf := (*bp)[:cap(*bp)]
		n, from, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			putBuf(bp)
			if s.isClosed() {
				return
			}
			continue
		}
		// Inbound fault decision, drawn on the read loop so the decision
		// order matches datagram arrival order.
		act := s.faults.datagram(DirIn, n)
		if act.drop {
			putBuf(bp)
			continue
		}
		if act.truncate >= 0 {
			n = act.truncate
		}
		if act.dup {
			// The network delivered the datagram twice: serve a private
			// copy as a second, independent request. This is the
			// retransmission the duplicate request cache exists for,
			// injected without needing the client to time out.
			dp := getBuf()
			*dp = append(*dp, buf[:n]...)
			s.serveDatagram(dp, (*dp)[:n], from, 0)
		}
		s.serveDatagram(bp, buf[:n], from, act.delay)
	}
}

// serveDatagram dispatches one UDP request on its own goroutine and
// recycles bp when the reply (if any) has hit the socket. delay, when
// nonzero, is an injected inbound hold applied before decoding.
func (s *Server) serveDatagram(bp *[]byte, msg []byte, from *net.UDPAddr, delay time.Duration) {
	// Arrival time and stream id are resolved on the read loop (the
	// peer address is at hand here) but only when capture is on.
	var ev *TapEvent
	if s.tap != nil {
		ev = &TapEvent{Stream: s.udpStream(from), When: time.Now()}
	}
	// The span is stamped with the arrival time here on the read loop, so
	// StageRecv covers scheduling delay and injected holds; Acquire on a
	// nil table hands out a nil span, which every mark downstream accepts.
	info := CallInfo{Client: from.AddrPort(), Span: s.spans.Acquire()}
	// The handler goroutine joins the server's WaitGroup (the read
	// loop still holds its own count, so this Add cannot race a
	// Close that already reached zero): Close drains in-flight
	// requests, which is what lets a shutdown trust that the final
	// stats and the capture tap saw every served RPC.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer putBuf(bp)
		if delay > 0 {
			time.Sleep(delay)
		}
		rp := getBuf()
		defer putBuf(rp)
		reply, ok := s.process(msg, *rp, ev, info)
		if !ok {
			s.spans.Discard(info.Span)
			return
		}
		*rp = reply
		s.emit(ev)
		// The reply stage covers the outbound fault decision and the
		// socket write — everything between the handler's last mark and
		// the datagram leaving (or being dropped by) the server.
		defer func() {
			info.Span.Mark(obs.StageReply)
			s.spans.Finish(info.Span)
		}()
		// Outbound fault decision: the reply datagram crosses the wire
		// too.
		act := s.faults.datagram(DirOut, len(reply))
		if act.drop {
			return
		}
		if act.delay > 0 {
			time.Sleep(act.delay)
		}
		if act.truncate >= 0 {
			reply = reply[:act.truncate]
		}
		s.udp.WriteToUDP(reply, from)
		if act.dup {
			s.udp.WriteToUDP(reply, from)
		}
	}()
}

// emit delivers a populated tap event; ev is nil when capture is off or
// the message was dropped as garbage.
func (s *Server) emit(ev *TapEvent) {
	if ev != nil {
		ev.Latency = time.Since(ev.When)
		s.tap(*ev)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// One tap stream id covers the connection's whole life.
	var stream uint32
	if s.tap != nil {
		stream = s.nextStream.Add(1)
	}
	// The connection's remote address is resolved once; every call on it
	// shares the identity.
	var peer netip.AddrPort
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		peer = ta.AddrPort()
	}
	var writeMu sync.Mutex
	for {
		bp := getBuf()
		msg, err := sunrpc.ReadRecordInto(conn, *bp)
		if err != nil {
			putBuf(bp)
			return
		}
		*bp = msg
		// Inbound record fault: a reset tears the connection down (the
		// client sees ECONNRESET/EOF mid-stream), a stall holds the
		// record before dispatch — the sender's half-written record
		// arriving late.
		act := s.faults.record(DirIn)
		if act.reset {
			putBuf(bp)
			return
		}
		var ev *TapEvent
		if s.tap != nil {
			ev = &TapEvent{Stream: stream, When: time.Now()}
		}
		// Arrival-stamped here (post record read), as in serveDatagram.
		info := CallInfo{Client: peer, TCP: true, Span: s.spans.Acquire()}
		// As in serveUDP: in-flight requests are part of the WaitGroup
		// so Close drains them (this goroutine's Add is covered by the
		// connection's own count).
		s.wg.Add(1)
		go func(bp *[]byte, msg []byte, stall time.Duration) {
			defer s.wg.Done()
			defer putBuf(bp)
			if stall > 0 {
				time.Sleep(stall)
			}
			rp := getBuf()
			defer putBuf(rp)
			// Record mark, RPC header and result are appended into one
			// pooled buffer and written in a single call — no re-framing
			// copy, no per-reply allocation.
			reply, ok := s.process(msg, sunrpc.BeginRecord(*rp), ev, info)
			if !ok {
				s.spans.Discard(info.Span)
				return
			}
			*rp = reply
			sunrpc.FinishRecord(reply, 0)
			s.emit(ev)
			// The reply stage covers write-lock wait (head-of-line
			// blocking behind a stalled reply shows up here), injected
			// faults and the record's socket write.
			defer func() {
				info.Span.Mark(obs.StageReply)
				s.spans.Finish(info.Span)
			}()
			writeMu.Lock()
			defer writeMu.Unlock()
			// Outbound record fault. A stall writes half the record,
			// holds the write lock through the pause, then completes it:
			// genuine head-of-line blocking — every reply behind this one
			// on the connection waits too, which is exactly the TCP
			// failure mode the paper's transport comparison is about. A
			// reset abandons the record mid-write and kills the
			// connection.
			wact := s.faults.record(DirOut)
			if wact.stall > 0 {
				half := len(reply) / 2
				if _, err := conn.Write(reply[:half]); err != nil {
					return
				}
				time.Sleep(wact.stall)
				reply = reply[half:]
			}
			if wact.reset {
				if len(reply) > 1 {
					conn.Write(reply[:len(reply)/2])
				}
				conn.Close()
				return
			}
			conn.Write(reply)
		}(bp, msg, act.stall)
	}
}

// process decodes a call, dispatches it and appends the encoded reply
// to out. ok == false means "drop" (undecodable garbage, or the handler
// returned StatDrop), like a real server. When ev is non-nil (capture
// on) the call's procedure, accept status, argument body and result
// region are recorded into it.
func (s *Server) process(msg []byte, out []byte, ev *TapEvent, info CallInfo) (reply []byte, ok bool) {
	// Everything from arrival to here — goroutine handoff, injected
	// inbound holds — is the receive stage.
	info.Span.Mark(obs.StageRecv)
	call, err := sunrpc.UnmarshalCall(msg)
	if err != nil {
		return out, false
	}
	info.Span.SetProc(call.Proc)
	info.Span.Mark(obs.StageDecode)
	info.XID = call.XID
	hdr := &sunrpc.Reply{XID: call.XID, Verf: sunrpc.AuthNoneCred()}
	switch {
	case call.Prog != s.prog:
		hdr.Stat = sunrpc.AcceptProgUnavail
	case call.Vers != s.vers:
		hdr.Stat = sunrpc.AcceptProgMismatch
	default:
		// The accept status precedes the result on the wire but the
		// handler produces both together, so the header goes out with a
		// success placeholder that is patched once the handler returns.
		out = hdr.AppendTo(out)
		statOff := len(out) - 4
		resultStart := len(out)
		out, hdr.Stat = s.handler(info, call.Proc, call.Body, out)
		if hdr.Stat == StatDrop {
			return out, false
		}
		binary.BigEndian.PutUint32(out[statOff:], hdr.Stat)
		if ev != nil {
			ev.XID, ev.Proc, ev.Stat, ev.Body = call.XID, call.Proc, hdr.Stat, call.Body
			ev.Result = out[resultStart:]
		}
		return out, true
	}
	if ev != nil {
		ev.XID, ev.Proc, ev.Stat, ev.Body = call.XID, call.Proc, hdr.Stat, call.Body
	}
	return hdr.AppendTo(out), true
}

// Client is a pipelining RPC client over UDP or TCP. It is safe for
// concurrent use by multiple goroutines: calls issued concurrently are
// all in flight at once over the single connection — a writer goroutine
// serializes sends, a reader goroutine demultiplexes replies to the
// matching call by XID, and each call waits only on its own reply (or
// its context). There is no one-outstanding-call lock.
type Client struct {
	network string
	conn    net.Conn
	prog    uint32
	vers    uint32
	xid     atomic.Uint32
	timeout atomic.Int64   // per-call deadline for Call, in nanoseconds
	faults  *FaultInjector // nil = perfect network

	sendCh  chan wireMsg
	closeCh chan struct{} // closed once, by Close or transport failure

	mu      sync.Mutex
	pending map[uint32]chan callReply
	err     error // first terminal transport error; nil while healthy
	closing sync.Once
}

// wireMsg is one marshalled call handed to the writer goroutine. buf is
// a pooled arena buffer (record mark included on TCP) that the writer
// recycles after the send.
type wireMsg struct {
	xid uint32
	buf *[]byte
}

// callReply is what the reader delivers to a waiting call.
type callReply struct {
	body []byte
	err  error
}

// Dial connects to an RPC server. network is "udp" or "tcp".
func Dial(network, addr string, prog, vers uint32) (*Client, error) {
	return DialFault(network, addr, prog, vers, nil)
}

// DialFault is Dial with a fault injector applied to this client's wire
// directions: outbound calls and inbound replies. A nil injector is
// exactly Dial. Client and server may share one injector (one decision
// stream) or carry their own.
func DialFault(network, addr string, prog, vers uint32, faults *FaultInjector) (*Client, error) {
	if network != "udp" && network != "tcp" {
		return nil, fmt.Errorf("rpcnet: unsupported network %q", network)
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		if isResourceExhausted(err) {
			return nil, fmt.Errorf("rpcnet: %w: %v", ErrConnExhausted, err)
		}
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	// Pipelined READ streams burst wsize replies at the client; the
	// same buffer courtesy as the server side (capped by the kernel).
	if uc, ok := conn.(*net.UDPConn); ok {
		uc.SetReadBuffer(udpReadBuffer)
	}
	c := &Client{
		network: network, conn: conn, prog: prog, vers: vers,
		faults:  faults,
		sendCh:  make(chan wireMsg, 64),
		closeCh: make(chan struct{}),
		pending: make(map[uint32]chan callReply),
	}
	c.timeout.Store(int64(5 * time.Second))
	c.xid.Store(uint32(time.Now().UnixNano()))
	go c.writer()
	go c.reader()
	return c, nil
}

// SetTimeout sets the per-call deadline used by Call (not CallContext)
// and the write deadline applied to each socket send.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// ErrClientClosed is returned for calls on a closed client.
var ErrClientClosed = errors.New("rpcnet: client closed")

// ErrConnExhausted tags dial failures caused by local resource limits —
// ephemeral ports (EADDRNOTAVAIL, EADDRINUSE) or file descriptors
// (EMFILE, ENFILE). High-fan-out callers (amplified replay, per-shard
// pools) hit these long before the server does; the typed error lets
// them fail the run with a diagnosis instead of retrying into a hang.
var ErrConnExhausted = errors.New("connection resources exhausted")

// isResourceExhausted classifies a dial error as local resource
// exhaustion.
func isResourceExhausted(err error) bool {
	for _, target := range []error{
		syscall.EADDRNOTAVAIL, syscall.EADDRINUSE, syscall.EMFILE, syscall.ENFILE,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// ErrSendFailed marks a call that failed before reaching the wire: the
// socket write errored (e.g. ECONNREFUSED surfacing on a connected UDP
// socket — a dead server, not a lossy path). Errors wrap it together
// with the underlying socket error.
var ErrSendFailed = errors.New("rpcnet: send failed")

// ErrReplyTimeout marks a call whose request was sent but whose reply
// never arrived within the deadline — a lossy or slow path, or a
// silently dead server. Timeout errors wrap both ErrReplyTimeout and
// context.DeadlineExceeded.
var ErrReplyTimeout = errors.New("rpcnet: reply timeout")

// Close releases the connection and fails any in-flight calls with
// ErrClientClosed. It returns the socket close error, if this call is
// the one that actually closed it.
func (c *Client) Close() error {
	return c.fail(ErrClientClosed)
}

// fail marks the transport dead with err (first error wins), closes the
// socket to unblock the reader and writer, and fails every pending
// call (sent or not — nothing can complete on a dead transport). It
// returns the socket close error when this invocation performed the
// close, nil otherwise.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	c.mu.Unlock()
	var closeErr error
	c.closing.Do(func() {
		close(c.closeCh)
		closeErr = c.conn.Close()
	})
	c.drainPending(err)
	return closeErr
}

// drainPending removes every pending call and fails it with err.
func (c *Client) drainPending(err error) {
	c.mu.Lock()
	stale := c.pending
	c.pending = make(map[uint32]chan callReply)
	c.mu.Unlock()
	for _, ch := range stale {
		ch <- callReply{err: err}
	}
}

// failOne fails a single in-flight call with err, if still pending.
func (c *Client) failOne(xid uint32, err error) {
	c.mu.Lock()
	ch, ok := c.pending[xid]
	if ok {
		delete(c.pending, xid)
	}
	c.mu.Unlock()
	if ok {
		ch <- callReply{err: err}
	}
}

// isClosed reports whether Close or a terminal failure already ran.
func (c *Client) isClosed() bool {
	select {
	case <-c.closeCh:
		return true
	default:
		return false
	}
}

// replyChans recycles per-call reply channels. A channel may return to
// the pool only when no send can ever reach it again: either its one
// value was received, or it was removed from the pending map before any
// sender saw it (senders remove a channel from the map, under the
// client mutex, before their single send).
var replyChans = sync.Pool{
	New: func() any { return make(chan callReply, 1) },
}

// register installs a pooled reply channel for xid, or reports the
// terminal error if the transport is already dead.
func (c *Client) register(xid uint32) (chan callReply, error) {
	ch := replyChans.Get().(chan callReply)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		replyChans.Put(ch)
		return nil, c.err
	}
	c.pending[xid] = ch
	return ch, nil
}

// reregister re-installs a reply channel whose one send was already
// consumed (a send-failure notification from failOne): the retry layer
// keeps the same XID and channel across retransmissions. The caller
// must own ch and have drained it.
func (c *Client) reregister(xid uint32, ch chan callReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.pending[xid] = ch
	return nil
}

// unregister removes xid's reply channel (call abandoned: context done).
// A reply arriving later is dropped by the demultiplexer. It reports
// whether the channel was still registered — if so, no sender can ever
// reach it and the caller may recycle it; if not, a send is (or was) in
// flight and the channel must be left to the garbage collector.
func (c *Client) unregister(xid uint32) bool {
	c.mu.Lock()
	_, ok := c.pending[xid]
	if ok {
		delete(c.pending, xid)
	}
	c.mu.Unlock()
	return ok
}

// writer drains sendCh onto the socket, serializing sends from
// concurrent calls. On TCP a send error kills the transport (the
// stream is dead); on UDP it fails only that call — a connected UDP
// socket's write error (ECONNREFUSED from a momentarily gone server)
// is transient and later calls may succeed.
func (c *Client) writer() {
	// deadlineArmed remembers whether a previous send left a write
	// deadline on the socket, so switching to SetTimeout(0) disarms it
	// once instead of letting the stale deadline fail a later send.
	deadlineArmed := false
	for {
		select {
		case <-c.closeCh:
			return
		case m := <-c.sendCh:
			// A write deadline keeps a stalled TCP peer (accepting but
			// never reading, send buffer full) from wedging the writer
			// forever; the blocked send errors out and fails the
			// transport, as the pre-pipelining per-call deadline did.
			// With no timeout configured a send cannot be abandoned
			// early, so both the deadline and the pending-map liveness
			// check (one mutex round-trip per send) are skipped.
			var err error
			if d := time.Duration(c.timeout.Load()); d > 0 {
				// Skip calls already abandoned by their context.
				c.mu.Lock()
				_, live := c.pending[m.xid]
				c.mu.Unlock()
				if !live {
					putBuf(m.buf)
					continue
				}
				err = c.conn.SetWriteDeadline(time.Now().Add(d))
				deadlineArmed = true
			} else if deadlineArmed {
				err = c.conn.SetWriteDeadline(time.Time{})
				deadlineArmed = false
			}
			if err == nil {
				// The record mark (TCP) is already embedded in the
				// buffer, so both transports send with one write.
				err = c.send(*m.buf)
			}
			putBuf(m.buf)
			if err != nil {
				if c.network == "tcp" {
					c.fail(fmt.Errorf("%w: %w", ErrSendFailed, err))
					return
				}
				c.failOne(m.xid, fmt.Errorf("%w: %w", ErrSendFailed, err))
			}
		}
	}
}

// send puts one marshalled call on the wire, applying this client's
// outbound fault policy. Injected pauses run on the writer goroutine —
// every queued send behind a stalled one waits too, which on the client
// side is the head-of-line cost a faulty uplink really has.
func (c *Client) send(buf []byte) error {
	if c.faults == nil {
		_, err := c.conn.Write(buf)
		return err
	}
	if c.network == "udp" {
		act := c.faults.datagram(DirOut, len(buf))
		if act.drop {
			return nil // lost on the wire: the send itself "succeeded"
		}
		if act.delay > 0 {
			time.Sleep(act.delay)
		}
		if act.truncate >= 0 {
			buf = buf[:act.truncate]
		}
		if _, err := c.conn.Write(buf); err != nil {
			return err
		}
		if act.dup {
			c.conn.Write(buf)
		}
		return nil
	}
	act := c.faults.record(DirOut)
	if act.stall > 0 {
		half := len(buf) / 2
		if _, err := c.conn.Write(buf[:half]); err != nil {
			return err
		}
		time.Sleep(act.stall)
		buf = buf[half:]
	}
	if act.reset {
		if len(buf) > 1 {
			c.conn.Write(buf[:len(buf)/2])
		}
		return fmt.Errorf("injected connection reset: %w", net.ErrClosed)
	}
	_, err := c.conn.Write(buf)
	return err
}

// reader demultiplexes replies to pending calls by XID. Garbage and
// replies to abandoned calls are dropped, like a real client facing
// stale datagrams. TCP read errors are terminal. A UDP read error
// (ICMP port-unreachable surfacing as ECONNREFUSED) names no XID, so
// it fails no one: punishing every in-flight call would drop replies
// already queued in the socket buffer, and any call whose datagram
// really was lost is bounded by its own context deadline.
func (c *Client) reader() {
	// One pooled arena buffer serves the reader's whole life: datagrams
	// land in it directly, TCP records are appended into it (growing it
	// at most once to the peak record size). UnmarshalReply copies the
	// body out — the client's one payload copy — before the next read
	// overwrites the buffer.
	bp := getBuf()
	defer putBuf(bp)
	for {
		var raw []byte
		var err error
		if c.network == "tcp" {
			raw, err = sunrpc.ReadRecordInto(c.conn, *bp)
			if raw != nil {
				*bp = raw
			}
		} else {
			buf := (*bp)[:cap(*bp)]
			var n int
			n, err = c.conn.Read(buf)
			raw = buf[:n]
		}
		if err != nil {
			if c.network == "tcp" || c.isClosed() {
				c.fail(fmt.Errorf("rpcnet: recv: %w", err))
				return
			}
			// A connected-UDP read error normally just drains a queued
			// ICMP error and the next read blocks; the pause guards
			// against hot-spinning on a socket that errors persistently.
			time.Sleep(time.Millisecond)
			continue
		}
		// Inbound fault decision (UDP replies only: a faulty TCP return
		// path is injected at the server's outbound hook, where record
		// framing is still intact).
		if c.faults != nil && c.network == "udp" {
			act := c.faults.datagram(DirIn, len(raw))
			if act.drop {
				continue
			}
			if act.truncate >= 0 {
				raw = raw[:act.truncate]
			}
			if act.delay > 0 {
				// The reader's buffer is overwritten by the next read, so
				// a held datagram needs its own copy; delivery happens off
				// the read loop — which also reorders it past anything
				// that arrives during the hold, the fault reordering
				// actually is.
				held := append([]byte(nil), raw...)
				dup := act.dup
				time.AfterFunc(act.delay, func() {
					c.deliver(held)
					if dup {
						c.deliver(held)
					}
				})
				continue
			}
			if act.dup {
				c.deliver(raw)
			}
		}
		c.deliver(raw)
	}
}

// deliver decodes one reply message and hands it to the pending call it
// answers. Garbage and replies to abandoned calls are dropped.
func (c *Client) deliver(raw []byte) {
	reply, err := sunrpc.UnmarshalReply(raw)
	if err != nil {
		return
	}
	c.mu.Lock()
	ch, ok := c.pending[reply.XID]
	if ok {
		delete(c.pending, reply.XID)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	if reply.Stat != sunrpc.AcceptSuccess {
		ch <- callReply{err: fmt.Errorf("%w: accept status %d", ErrRPC, reply.Stat)}
		return
	}
	ch <- callReply{body: reply.Body}
}

// ErrRPC is returned for non-success accept statuses.
var ErrRPC = errors.New("rpcnet: rpc error")

// authUnixCred is the constant credential every call carries, built
// once so marshalling a call allocates nothing.
var authUnixCred = sunrpc.AuthUnixCred("nfstricks", 0, 0)

// callTimers recycles the deadline timers Call arms per invocation —
// building a context.WithTimeout per call costs several allocations on
// a path that otherwise makes none.
var callTimers = sync.Pool{
	New: func() any {
		t := time.NewTimer(time.Hour)
		t.Stop()
		return t
	},
}

func acquireTimer(d time.Duration) *time.Timer {
	t := callTimers.Get().(*time.Timer)
	t.Reset(d)
	return t
}

func releaseTimer(t *time.Timer) {
	// A failed Stop means the timer fired (or is firing): under Go 1.22
	// timer semantics a tick may still be in flight to t.C, and a
	// non-blocking drain cannot rule that out. Pooling such a timer
	// would hand the stale tick to a later call, expiring it instantly —
	// so only cleanly stopped timers are recycled; fired ones (the rare
	// timeout and timeout-adjacent paths) go to the garbage collector.
	if t.Stop() {
		callTimers.Put(t)
	}
}

// Call performs one RPC and returns the reply body, waiting at most the
// SetTimeout deadline (forever when the timeout is zero). Calls from
// multiple goroutines are pipelined.
func (c *Client) Call(proc uint32, args []byte) ([]byte, error) {
	d := time.Duration(c.timeout.Load())
	if d <= 0 {
		return c.call(proc, args, nil, nil, nil)
	}
	t := acquireTimer(d)
	defer releaseTimer(t)
	return c.call(proc, args, nil, t.C, nil)
}

// CallContext performs one RPC and returns the reply body. The call is
// abandoned (its late reply dropped) when ctx is done.
func (c *Client) CallContext(ctx context.Context, proc uint32, args []byte) ([]byte, error) {
	return c.call(proc, args, ctx.Done(), nil, ctx.Err)
}

// marshalCall assigns an XID and marshals record mark (TCP), RPC
// header and arguments in one shot into a pooled buffer, recycled by
// the writer after the send.
func (c *Client) marshalCall(proc uint32, args []byte) (uint32, *[]byte) {
	xid := c.xid.Add(1)
	return xid, c.marshalCallXID(xid, proc, args)
}

// marshalCallXID marshals a call under a caller-chosen XID. The retry
// layer re-marshals each retransmission under the original XID (the
// writer recycles send buffers, so the bytes must be rebuilt) — same
// XID on the wire is what lets the server's duplicate request cache
// recognize the retry.
func (c *Client) marshalCallXID(xid uint32, proc uint32, args []byte) *[]byte {
	call := sunrpc.Call{
		XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc,
		Cred: authUnixCred,
		Verf: sunrpc.AuthNoneCred(),
		Body: args,
	}
	bp := getBuf()
	buf := *bp
	if c.network == "tcp" {
		buf = sunrpc.BeginRecord(buf)
	}
	buf = call.AppendTo(buf)
	if c.network == "tcp" {
		sunrpc.FinishRecord(buf, 0)
	}
	*bp = buf
	return bp
}

// call is the shared body of Call and CallContext. The call is
// abandoned when done is closed or expired fires (a nil channel never
// selects); cause, when non-nil, names the abandon reason.
func (c *Client) call(proc uint32, args []byte, done <-chan struct{}, expired <-chan time.Time, cause func() error) ([]byte, error) {
	abandonErr := func() error {
		if cause != nil {
			return fmt.Errorf("rpcnet: %w", cause())
		}
		return fmt.Errorf("%w: %w", ErrReplyTimeout, context.DeadlineExceeded)
	}
	xid, bp := c.marshalCall(proc, args)
	ch, err := c.register(xid)
	if err != nil {
		putBuf(bp)
		return nil, err
	}
	// abandon tears down a call that will never complete; the reply
	// channel is recycled only when it provably has no sender (see
	// unregister).
	abandon := func() {
		if c.unregister(xid) {
			replyChans.Put(ch)
		}
	}
	select {
	case c.sendCh <- wireMsg{xid: xid, buf: bp}:
	case <-c.closeCh:
		putBuf(bp)
		abandon()
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	case <-done:
		putBuf(bp)
		abandon()
		return nil, abandonErr()
	case <-expired:
		putBuf(bp)
		abandon()
		return nil, abandonErr()
	}
	select {
	case r := <-ch:
		// The single possible send has been received, so the channel is
		// empty and unreferenced: recycle it.
		replyChans.Put(ch)
		return r.body, r.err
	case <-done:
		abandon()
		return nil, abandonErr()
	case <-expired:
		abandon()
		return nil, abandonErr()
	}
}

// Pending is an in-flight asynchronous call started by Go. Exactly one
// Wait must be made on each Pending.
type Pending struct {
	c   *Client
	xid uint32
	ch  chan callReply
	err error // immediate failure (transport already dead), or Wait consumed
}

// Go starts an RPC and returns without waiting for the reply, which a
// later Wait collects. Unlike spawning Call in a goroutine, Go issues
// the request before returning: calls made by one goroutine through Go
// are handed to the transport in program order, which is what lets an
// open-loop trace replay fire a stream's requests on schedule while
// preserving the stream's send order. Go blocks only for transport
// backpressure (the writer's queue).
func (c *Client) Go(proc uint32, args []byte) *Pending {
	xid, bp := c.marshalCall(proc, args)
	ch, err := c.register(xid)
	if err != nil {
		putBuf(bp)
		return &Pending{err: err}
	}
	select {
	case c.sendCh <- wireMsg{xid: xid, buf: bp}:
		return &Pending{c: c, xid: xid, ch: ch}
	case <-c.closeCh:
		putBuf(bp)
		if c.unregister(xid) {
			replyChans.Put(ch)
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return &Pending{err: err}
	}
}

// errWaited poisons a Pending whose single Wait already ran.
var errWaited = errors.New("rpcnet: reply already consumed")

// Wait blocks for the reply body, at most d when d > 0 (forever
// otherwise). On timeout the call is abandoned and its late reply
// dropped, exactly like an expired Call.
func (p *Pending) Wait(d time.Duration) ([]byte, error) {
	if p.ch == nil {
		return nil, p.err
	}
	if d <= 0 {
		r := <-p.ch
		replyChans.Put(p.ch)
		p.ch, p.err = nil, errWaited
		return r.body, r.err
	}
	t := acquireTimer(d)
	defer releaseTimer(t)
	select {
	case r := <-p.ch:
		replyChans.Put(p.ch)
		p.ch, p.err = nil, errWaited
		return r.body, r.err
	case <-t.C:
		// Recycle the channel only if no sender can reach it (see
		// unregister); a racing reply leaves it to the collector.
		if p.c.unregister(p.xid) {
			replyChans.Put(p.ch)
		}
		p.ch, p.err = nil, errWaited
		return nil, fmt.Errorf("%w: %w", ErrReplyTimeout, context.DeadlineExceeded)
	}
}
