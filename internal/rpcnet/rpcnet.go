// Package rpcnet runs ONC RPC over real sockets (UDP and TCP with
// record marking) using the same wire encodings as the simulator. It
// exists to prove the protocol stack against an actual network path and
// to make the library usable as a tiny userspace NFS-like file service
// (see internal/memfs and cmd/nfsserve).
package rpcnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nfstricks/internal/sunrpc"
)

// maxUDPMessage bounds datagram buffers (rsize 32 KB + headers).
const maxUDPMessage = 64 * 1024

// Handler serves one RPC call: given the procedure number and the
// XDR-encoded argument body, it returns the XDR-encoded result body and
// an accept status. Handlers must be safe for concurrent use.
type Handler func(proc uint32, body []byte) (res []byte, stat uint32)

// Server serves one RPC program on a UDP socket and a TCP listener
// bound to the same address.
type Server struct {
	prog, vers uint32
	handler    Handler

	udp *net.UDPConn
	tcp net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer binds addr (e.g. "127.0.0.1:0") for program prog version
// vers and starts serving. Close shuts it down.
func NewServer(addr string, prog, vers uint32, handler Handler) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	udp, tcp, err := bindBoth(udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		prog: prog, vers: vers, handler: handler,
		udp: udp, tcp: tcp,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s, nil
}

// bindBoth acquires a UDP socket and a TCP listener on the same port.
// With an explicit port one attempt is made; with port 0 the kernel
// picks the UDP port, and since the matching TCP port may independently
// be in use (e.g. as some client's ephemeral port), the pair is retried
// on a fresh port a few times before giving up.
func bindBoth(udpAddr *net.UDPAddr) (*net.UDPConn, net.Listener, error) {
	attempts := 1
	if udpAddr.Port == 0 {
		attempts = 16
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		udp, err := net.ListenUDP("udp", udpAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("rpcnet: %w", err)
		}
		tcp, err := net.Listen("tcp", udp.LocalAddr().String())
		if err == nil {
			return udp, tcp, nil
		}
		udp.Close()
		lastErr = err
	}
	return nil, nil, fmt.Errorf("rpcnet: %w", lastErr)
}

// Addr returns the bound address (identical for UDP and TCP).
func (s *Server) Addr() string { return s.udp.LocalAddr().String() }

// Close stops the server and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.udp.Close()
	s.tcp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, maxUDPMessage)
	for {
		n, from, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		msg := append([]byte(nil), buf[:n]...)
		go func() {
			if reply := s.process(msg); reply != nil {
				s.udp.WriteToUDP(reply, from)
			}
		}()
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		msg, err := sunrpc.ReadRecord(conn)
		if err != nil {
			return
		}
		go func(msg []byte) {
			if reply := s.process(msg); reply != nil {
				writeMu.Lock()
				defer writeMu.Unlock()
				sunrpc.WriteRecord(conn, reply)
			}
		}(msg)
	}
}

// process decodes a call, dispatches it and encodes the reply. A nil
// return means "drop" (undecodable garbage), like a real server.
func (s *Server) process(msg []byte) []byte {
	call, err := sunrpc.UnmarshalCall(msg)
	if err != nil {
		return nil
	}
	reply := &sunrpc.Reply{XID: call.XID, Verf: sunrpc.AuthNoneCred()}
	switch {
	case call.Prog != s.prog:
		reply.Stat = sunrpc.AcceptProgUnavail
	case call.Vers != s.vers:
		reply.Stat = sunrpc.AcceptProgMismatch
	default:
		body, stat := s.handler(call.Proc, call.Body)
		reply.Stat = stat
		reply.Body = body
	}
	return sunrpc.MarshalReply(reply)
}

// Client is a pipelining RPC client over UDP or TCP. It is safe for
// concurrent use by multiple goroutines: calls issued concurrently are
// all in flight at once over the single connection — a writer goroutine
// serializes sends, a reader goroutine demultiplexes replies to the
// matching call by XID, and each call waits only on its own reply (or
// its context). There is no one-outstanding-call lock.
type Client struct {
	network string
	conn    net.Conn
	prog    uint32
	vers    uint32
	xid     atomic.Uint32
	timeout atomic.Int64 // per-call deadline for Call, in nanoseconds

	sendCh  chan wireMsg
	closeCh chan struct{} // closed once, by Close or transport failure

	mu      sync.Mutex
	pending map[uint32]chan callReply
	err     error // first terminal transport error; nil while healthy
	closing sync.Once
}

// wireMsg is one marshalled call handed to the writer goroutine.
type wireMsg struct {
	xid uint32
	msg []byte
}

// callReply is what the reader delivers to a waiting call.
type callReply struct {
	body []byte
	err  error
}

// Dial connects to an RPC server. network is "udp" or "tcp".
func Dial(network, addr string, prog, vers uint32) (*Client, error) {
	if network != "udp" && network != "tcp" {
		return nil, fmt.Errorf("rpcnet: unsupported network %q", network)
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	c := &Client{
		network: network, conn: conn, prog: prog, vers: vers,
		sendCh:  make(chan wireMsg, 64),
		closeCh: make(chan struct{}),
		pending: make(map[uint32]chan callReply),
	}
	c.timeout.Store(int64(5 * time.Second))
	c.xid.Store(uint32(time.Now().UnixNano()))
	go c.writer()
	go c.reader()
	return c, nil
}

// SetTimeout sets the per-call deadline used by Call (not CallContext)
// and the write deadline applied to each socket send.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// ErrClientClosed is returned for calls on a closed client.
var ErrClientClosed = errors.New("rpcnet: client closed")

// Close releases the connection and fails any in-flight calls with
// ErrClientClosed. It returns the socket close error, if this call is
// the one that actually closed it.
func (c *Client) Close() error {
	return c.fail(ErrClientClosed)
}

// fail marks the transport dead with err (first error wins), closes the
// socket to unblock the reader and writer, and fails every pending
// call (sent or not — nothing can complete on a dead transport). It
// returns the socket close error when this invocation performed the
// close, nil otherwise.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	c.mu.Unlock()
	var closeErr error
	c.closing.Do(func() {
		close(c.closeCh)
		closeErr = c.conn.Close()
	})
	c.drainPending(err)
	return closeErr
}

// drainPending removes every pending call and fails it with err.
func (c *Client) drainPending(err error) {
	c.mu.Lock()
	stale := c.pending
	c.pending = make(map[uint32]chan callReply)
	c.mu.Unlock()
	for _, ch := range stale {
		ch <- callReply{err: err}
	}
}

// failOne fails a single in-flight call with err, if still pending.
func (c *Client) failOne(xid uint32, err error) {
	c.mu.Lock()
	ch, ok := c.pending[xid]
	if ok {
		delete(c.pending, xid)
	}
	c.mu.Unlock()
	if ok {
		ch <- callReply{err: err}
	}
}

// isClosed reports whether Close or a terminal failure already ran.
func (c *Client) isClosed() bool {
	select {
	case <-c.closeCh:
		return true
	default:
		return false
	}
}

// register installs a reply channel for xid, or reports the terminal
// error if the transport is already dead.
func (c *Client) register(xid uint32) (chan callReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	ch := make(chan callReply, 1)
	c.pending[xid] = ch
	return ch, nil
}

// unregister removes xid's reply channel (call abandoned: context done).
// A reply arriving later is dropped by the demultiplexer.
func (c *Client) unregister(xid uint32) {
	c.mu.Lock()
	delete(c.pending, xid)
	c.mu.Unlock()
}

// writer drains sendCh onto the socket, serializing sends from
// concurrent calls. On TCP a send error kills the transport (the
// stream is dead); on UDP it fails only that call — a connected UDP
// socket's write error (ECONNREFUSED from a momentarily gone server)
// is transient and later calls may succeed.
func (c *Client) writer() {
	for {
		select {
		case <-c.closeCh:
			return
		case m := <-c.sendCh:
			// Skip calls already abandoned by their context.
			c.mu.Lock()
			_, live := c.pending[m.xid]
			c.mu.Unlock()
			if !live {
				continue
			}
			// A write deadline keeps a stalled TCP peer (accepting but
			// never reading, send buffer full) from wedging the writer
			// forever; the blocked send errors out and fails the
			// transport, as the pre-pipelining per-call deadline did.
			if d := time.Duration(c.timeout.Load()); d > 0 {
				c.conn.SetWriteDeadline(time.Now().Add(d))
			}
			var err error
			if c.network == "tcp" {
				err = sunrpc.WriteRecord(c.conn, m.msg)
			} else {
				_, err = c.conn.Write(m.msg)
			}
			if err != nil {
				if c.network == "tcp" {
					c.fail(fmt.Errorf("rpcnet: send: %w", err))
					return
				}
				c.failOne(m.xid, fmt.Errorf("rpcnet: send: %w", err))
			}
		}
	}
}

// reader demultiplexes replies to pending calls by XID. Garbage and
// replies to abandoned calls are dropped, like a real client facing
// stale datagrams. TCP read errors are terminal. A UDP read error
// (ICMP port-unreachable surfacing as ECONNREFUSED) names no XID, so
// it fails no one: punishing every in-flight call would drop replies
// already queued in the socket buffer, and any call whose datagram
// really was lost is bounded by its own context deadline.
func (c *Client) reader() {
	var buf []byte
	if c.network != "tcp" {
		buf = make([]byte, maxUDPMessage)
	}
	for {
		var raw []byte
		var err error
		if c.network == "tcp" {
			raw, err = sunrpc.ReadRecord(c.conn)
		} else {
			var n int
			n, err = c.conn.Read(buf)
			raw = buf[:n]
		}
		if err != nil {
			if c.network == "tcp" || c.isClosed() {
				c.fail(fmt.Errorf("rpcnet: recv: %w", err))
				return
			}
			// A connected-UDP read error normally just drains a queued
			// ICMP error and the next read blocks; the pause guards
			// against hot-spinning on a socket that errors persistently.
			time.Sleep(time.Millisecond)
			continue
		}
		reply, err := sunrpc.UnmarshalReply(raw)
		if err != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[reply.XID]
		if ok {
			delete(c.pending, reply.XID)
		}
		c.mu.Unlock()
		if !ok {
			continue
		}
		if reply.Stat != sunrpc.AcceptSuccess {
			ch <- callReply{err: fmt.Errorf("%w: accept status %d", ErrRPC, reply.Stat)}
			continue
		}
		ch <- callReply{body: reply.Body}
	}
}

// ErrRPC is returned for non-success accept statuses.
var ErrRPC = errors.New("rpcnet: rpc error")

// Call performs one RPC and returns the reply body, waiting at most the
// SetTimeout deadline. Calls from multiple goroutines are pipelined.
func (c *Client) Call(proc uint32, args []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(c.timeout.Load()))
	defer cancel()
	return c.CallContext(ctx, proc, args)
}

// CallContext performs one RPC and returns the reply body. The call is
// abandoned (its late reply dropped) when ctx is done.
func (c *Client) CallContext(ctx context.Context, proc uint32, args []byte) ([]byte, error) {
	xid := c.xid.Add(1)
	msg := sunrpc.MarshalCall(&sunrpc.Call{
		XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc,
		Cred: sunrpc.AuthUnixCred("nfstricks", 0, 0),
		Verf: sunrpc.AuthNoneCred(),
		Body: args,
	})
	ch, err := c.register(xid)
	if err != nil {
		return nil, err
	}
	select {
	case c.sendCh <- wireMsg{xid: xid, msg: msg}:
	case <-c.closeCh:
		c.unregister(xid)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	case <-ctx.Done():
		c.unregister(xid)
		return nil, fmt.Errorf("rpcnet: %w", ctx.Err())
	}
	select {
	case r := <-ch:
		return r.body, r.err
	case <-ctx.Done():
		c.unregister(xid)
		return nil, fmt.Errorf("rpcnet: %w", ctx.Err())
	}
}
