// Package rpcnet runs ONC RPC over real sockets (UDP and TCP with
// record marking) using the same wire encodings as the simulator. It
// exists to prove the protocol stack against an actual network path and
// to make the library usable as a tiny userspace NFS-like file service
// (see internal/memfs and cmd/nfsserve).
package rpcnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nfstricks/internal/sunrpc"
)

// maxUDPMessage bounds datagram buffers (rsize 32 KB + headers).
const maxUDPMessage = 64 * 1024

// Handler serves one RPC call: given the procedure number and the
// XDR-encoded argument body, it returns the XDR-encoded result body and
// an accept status. Handlers must be safe for concurrent use.
type Handler func(proc uint32, body []byte) (res []byte, stat uint32)

// Server serves one RPC program on a UDP socket and a TCP listener
// bound to the same address.
type Server struct {
	prog, vers uint32
	handler    Handler

	udp *net.UDPConn
	tcp net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer binds addr (e.g. "127.0.0.1:0") for program prog version
// vers and starts serving. Close shuts it down.
func NewServer(addr string, prog, vers uint32, handler Handler) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	tcp, err := net.Listen("tcp", udp.LocalAddr().String())
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	s := &Server{
		prog: prog, vers: vers, handler: handler,
		udp: udp, tcp: tcp,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s, nil
}

// Addr returns the bound address (identical for UDP and TCP).
func (s *Server) Addr() string { return s.udp.LocalAddr().String() }

// Close stops the server and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.udp.Close()
	s.tcp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, maxUDPMessage)
	for {
		n, from, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		msg := append([]byte(nil), buf[:n]...)
		go func() {
			if reply := s.process(msg); reply != nil {
				s.udp.WriteToUDP(reply, from)
			}
		}()
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		msg, err := sunrpc.ReadRecord(conn)
		if err != nil {
			return
		}
		go func(msg []byte) {
			if reply := s.process(msg); reply != nil {
				writeMu.Lock()
				defer writeMu.Unlock()
				sunrpc.WriteRecord(conn, reply)
			}
		}(msg)
	}
}

// process decodes a call, dispatches it and encodes the reply. A nil
// return means "drop" (undecodable garbage), like a real server.
func (s *Server) process(msg []byte) []byte {
	call, err := sunrpc.UnmarshalCall(msg)
	if err != nil {
		return nil
	}
	reply := &sunrpc.Reply{XID: call.XID, Verf: sunrpc.AuthNoneCred()}
	switch {
	case call.Prog != s.prog:
		reply.Stat = sunrpc.AcceptProgUnavail
	case call.Vers != s.vers:
		reply.Stat = sunrpc.AcceptProgMismatch
	default:
		body, stat := s.handler(call.Proc, call.Body)
		reply.Stat = stat
		reply.Body = body
	}
	return sunrpc.MarshalReply(reply)
}

// Client is a synchronous RPC client over UDP or TCP.
type Client struct {
	network string
	conn    net.Conn
	prog    uint32
	vers    uint32
	xid     atomic.Uint32
	mu      sync.Mutex // serializes calls (one outstanding at a time)
	timeout time.Duration
}

// Dial connects to an RPC server. network is "udp" or "tcp".
func Dial(network, addr string, prog, vers uint32) (*Client, error) {
	if network != "udp" && network != "tcp" {
		return nil, fmt.Errorf("rpcnet: unsupported network %q", network)
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: %w", err)
	}
	c := &Client{network: network, conn: conn, prog: prog, vers: vers,
		timeout: 5 * time.Second}
	c.xid.Store(uint32(time.Now().UnixNano()))
	return c, nil
}

// SetTimeout sets the per-call deadline.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ErrRPC is returned for non-success accept statuses.
var ErrRPC = errors.New("rpcnet: rpc error")

// Call performs one RPC and returns the reply body.
func (c *Client) Call(proc uint32, args []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	xid := c.xid.Add(1)
	msg := sunrpc.MarshalCall(&sunrpc.Call{
		XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc,
		Cred: sunrpc.AuthUnixCred("nfstricks", 0, 0),
		Verf: sunrpc.AuthNoneCred(),
		Body: args,
	})
	deadline := time.Now().Add(c.timeout)
	c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})

	if c.network == "tcp" {
		if err := sunrpc.WriteRecord(c.conn, msg); err != nil {
			return nil, fmt.Errorf("rpcnet: send: %w", err)
		}
	} else {
		if _, err := c.conn.Write(msg); err != nil {
			return nil, fmt.Errorf("rpcnet: send: %w", err)
		}
	}

	for {
		var raw []byte
		var err error
		if c.network == "tcp" {
			raw, err = sunrpc.ReadRecord(c.conn)
		} else {
			buf := make([]byte, maxUDPMessage)
			var n int
			n, err = c.conn.Read(buf)
			raw = buf[:n]
		}
		if err != nil {
			return nil, fmt.Errorf("rpcnet: recv: %w", err)
		}
		reply, err := sunrpc.UnmarshalReply(raw)
		if err != nil {
			continue // garbage or stale datagram: keep waiting
		}
		if reply.XID != xid {
			continue // reply to an earlier (timed-out) call
		}
		if reply.Stat != sunrpc.AcceptSuccess {
			return nil, fmt.Errorf("%w: accept status %d", ErrRPC, reply.Stat)
		}
		return reply.Body, nil
	}
}
