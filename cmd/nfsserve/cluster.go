package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"nfstricks/cmd/internal/filespec"
	"nfstricks/internal/bench"
	"nfstricks/internal/cluster"
	"nfstricks/internal/obs"
)

// runCluster is nfsserve's -cluster N mode: an in-process sharded
// cluster behind a control plane, the multi-machine deployment shape
// without the machines. Each shard is a full nfsd instance on its own
// port; the control plane hands any shard-aware client (internal/
// cluster.DialClient, nfsbench -exp cluster-scale) the versioned shard
// map. The single-server knobs (backend, gather, faults, DRC) don't
// apply here — shards run the default in-memory configuration.
func runCluster(n int, ctrlAddr, adminAddr string, files filespec.List, statsEvery time.Duration) {
	c, err := cluster.New(cluster.Config{Shards: n, CtrlAddr: ctrlAddr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve: cluster:", err)
		os.Exit(1)
	}
	defer c.Close()

	cl, err := cluster.DialClient("tcp", c.CtrlAddr(), cluster.ClientConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve: cluster:", err)
		os.Exit(1)
	}
	defer cl.Close()

	if len(files) == 0 {
		files = filespec.List{"demo=4"}
	}
	m := c.Map()
	for _, spec := range files {
		name, sizeMB, err := filespec.Parse(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve:", err)
			os.Exit(2)
		}
		if strings.Contains(name, "/") {
			fmt.Fprintf(os.Stderr, "nfsserve: cluster mode serves a flat namespace, cannot create %q\n", name)
			os.Exit(2)
		}
		fh, err := cl.Create(name, uint64(sizeMB)<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsserve: create %s: %v\n", name, err)
			os.Exit(1)
		}
		owner, _ := m.OwnerID(uint64(fh))
		fmt.Printf("serving %s (%d MB) as fh %d on shard %d\n", name, sizeMB, fh, owner)
	}

	var adm *obs.AdminServer
	if adminAddr != "" {
		// The admin endpoint serves the merged shard-labeled view: every
		// shard's registry plus the control plane's, one exposition.
		adm, err = obs.ServeAdminSnap(adminAddr, c.MergedSnapshot, bench.CollectEnvMeta())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve: admin:", err)
			os.Exit(1)
		}
		defer adm.Close()
		fmt.Printf("admin on http://%s (/metrics /statsz /debug/pprof/)\n", adm.Addr())
	}

	fmt.Printf("cluster control plane on %s (map v%d)\n", c.CtrlAddr(), m.Version)
	for _, s := range m.Shards {
		fmt.Printf("shard %d on %s (udp+tcp)\n", s.ID, s.Addr)
	}

	printStats := func(prefix string) {
		for _, st := range c.Stats() {
			state := ""
			if st.Drained {
				state = " drained"
			}
			fmt.Printf("%sshard %d%s: executed=%d redirects=%d\n",
				prefix, st.ID, state, st.Executed, st.Redirects)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var tick <-chan time.Time
	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			printStats("")
		case <-stop:
			fmt.Printf("final: map v%d\n", c.Map().Version)
			printStats("final: ")
			return
		}
	}
}
