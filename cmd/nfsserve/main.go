// Command nfsserve runs the live userspace NFS-like file service over
// real UDP and TCP sockets, with the paper's read-ahead heuristics
// running on its READ path and the write-gathering engine on its WRITE
// path. It is the zero-infrastructure way to poke at the protocol
// stack:
//
//	nfsserve -addr 127.0.0.1:12049 -file demo=4 -heuristic slowdown
//
// then read "demo" (4 MB of patterned data) with any client built on
// internal/memfs.DialClient, e.g. examples/liveserver.
//
// The storage backend is pluggable: -backend mem (the default
// in-memory store) or -backend zone, which places files at concrete
// LBAs on a simulated zoned drive (-disk ide|scsi) behind a block
// buffer cache (-cache-mb), so reads pay real elapsed time that
// depends on zone placement (-zone outer|inner) and cache warmth —
// the paper's ZCAV trap, live on the wire.
//
// The asynchronous write path is configured with -gather-window (0 =
// synchronous write-through), -gather-bytes (per-file dirty bound) and
// -sink (mem = immediate, throttled = a disk-like cost model shaped by
// -sink-latency and -sink-mbps); with -backend zone, commits
// additionally pay the simulated disk.
//
// The fault-tolerant RPC path is configured with -drc (the duplicate
// request cache: retransmitted non-idempotent calls get the original's
// reply replayed instead of re-executing, budgeted by -drc-bytes) and
// -fault, which injects seeded wire faults on the server's sockets,
// e.g. -fault drop=0.05,stall=0.02:20ms -fault-seed 7. Both print
// their counters in the final stats.
//
// Observability: -admin :7070 serves /metrics (Prometheus text),
// /statsz (JSON) and /debug/pprof/* from the process's single metrics
// registry, the same source the final stats lines print from, so no
// two views can disagree. -slow-ms N logs a structured JSON line to
// stderr (with the per-stage breakdown) for any request slower than N
// milliseconds.
//
// With -trace out.nft every served RPC is recorded to a .nft trace file
// (arrival time, stream, procedure, handle, offset, count, stability,
// status, latency) that `nfstrace analyze` and `nfstrace replay`
// consume. On SIGINT the server stops accepting, prints a final stats
// line — per-procedure counters, WRITEs split by stability, COMMITs,
// and the gather engine's flush/coalescing accounting — flushes the
// trace and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"nfstricks/cmd/internal/filespec"
	"nfstricks/internal/bench"
	"nfstricks/internal/disk"
	"nfstricks/internal/drc"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/obs"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/tracefile"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
	"nfstricks/internal/zonefs"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:0", "address to bind (UDP and TCP)")
		files        filespec.List
		backendKind  = flag.String("backend", "mem", "storage backend: mem (in-memory) or zone (ZCAV disk stack)")
		zone         = flag.String("zone", "outer", "zone backend: place files on the outer or inner quarter of the drive")
		cacheMB      = flag.Int("cache-mb", 64, "zone backend: buffer cache size in MB")
		diskKind     = flag.String("disk", "ide", "zone backend: drive model, ide (WD200BB) or scsi (IBM DDYS)")
		heuristic    = flag.String("heuristic", "slowdown", "read-ahead heuristic: default, slowdown, always, cursor")
		stats        = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 = off)")
		trace        = flag.String("trace", "", "record every served RPC to this .nft trace file")
		gatherWindow = flag.Duration("gather-window", 0, "write gather window (0 = synchronous write-through)")
		gatherBytes  = flag.Int64("gather-bytes", 0, "per-file dirty byte bound before an early flush (0 = default)")
		sinkKind     = flag.String("sink", "mem", "stable-storage sink: mem (immediate) or throttled")
		sinkLatency  = flag.Duration("sink-latency", 300*time.Microsecond, "throttled sink: fixed cost per flush")
		sinkMBps     = flag.Float64("sink-mbps", 0, "throttled sink: bandwidth in MB/s (0 = infinite)")
		drcOn        = flag.Bool("drc", false, "enable the duplicate request cache (replay cached replies to retransmitted non-idempotent calls)")
		drcBytes     = flag.Int("drc-bytes", 0, "duplicate request cache reply byte budget (0 = 1 MB default)")
		faultSpec    = flag.String("fault", "", "inject wire faults, e.g. drop=0.05,dup=0.01,delay=0.02:1ms-5ms,trunc=0.01,stall=0.05:20ms,reset=0.001")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for the fault injector's decision stream")
		admin        = flag.String("admin", "", "serve /metrics, /statsz and /debug/pprof on this address (empty = off)")
		slowMS       = flag.Int("slow-ms", 0, "log a structured line for any request slower than this many ms (0 = off)")
		clusterN     = flag.Int("cluster", 0, "run an in-process sharded cluster with this many nfsd shards (0 = single server)")
		ctrlAddr     = flag.String("ctrl-addr", "127.0.0.1:0", "cluster mode: control plane bind address")
	)
	flag.Var(&files, "file", "file to serve, as name=sizeMB (repeatable; default demo=4)")
	flag.Parse()

	if *clusterN > 0 {
		runCluster(*clusterN, *ctrlAddr, *admin, files, *stats)
		return
	}

	var h readahead.Heuristic
	switch *heuristic {
	case "default":
		h = readahead.Default{}
	case "slowdown":
		h = readahead.SlowDown{}
	case "always":
		h = readahead.Always{}
	case "cursor":
		h = &readahead.CursorHeuristic{}
	default:
		fmt.Fprintf(os.Stderr, "nfsserve: unknown heuristic %q\n", *heuristic)
		os.Exit(2)
	}

	var sink wgather.Sink
	switch *sinkKind {
	case "mem":
		sink = wgather.NullSink{}
	case "throttled":
		sink = &wgather.ThrottledSink{Latency: *sinkLatency, BytesPerSec: *sinkMBps * 1e6}
	default:
		fmt.Fprintf(os.Stderr, "nfsserve: unknown sink %q (want mem or throttled)\n", *sinkKind)
		os.Exit(2)
	}

	var backend vfs.Backend
	var zfs *zonefs.FS
	switch *backendKind {
	case "mem":
		backend = memfs.NewFS()
	case "zone":
		var model *disk.Model
		switch *diskKind {
		case "ide":
			model = disk.WD200BB()
		case "scsi":
			model = disk.IBMDDYS36950()
		default:
			fmt.Fprintf(os.Stderr, "nfsserve: unknown disk %q (want ide or scsi)\n", *diskKind)
			os.Exit(2)
		}
		placement := zonefs.Outer
		switch *zone {
		case "outer":
		case "inner":
			placement = zonefs.Inner
		default:
			fmt.Fprintf(os.Stderr, "nfsserve: unknown zone %q (want outer or inner)\n", *zone)
			os.Exit(2)
		}
		zfs = zonefs.New(zonefs.Config{Model: model, Placement: placement, CacheMB: *cacheMB})
		backend = zfs
	default:
		fmt.Fprintf(os.Stderr, "nfsserve: unknown backend %q (want mem or zone)\n", *backendKind)
		os.Exit(2)
	}

	built, err := filespec.BuildInto(backend, files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve:", err)
		os.Exit(2)
	}
	for _, f := range built {
		fmt.Printf("serving %s (%d MB)\n", f.Path, f.Size>>20)
	}

	// Every stat the process reports flows through this one registry:
	// the periodic ticker line, the final text lines, /statsz JSON and
	// /metrics Prometheus text are all views of the same Dump, so they
	// cannot disagree.
	reg := obs.NewRegistry()
	reg.GaugeFunc("nfsserve_up", func() float64 { return 1 })
	reg.GaugeFunc("nfsserve_gomaxprocs", func() float64 { return float64(runtime.GOMAXPROCS(0)) })

	svc := nfsd.New(backend, nfsd.Config{
		Heuristic: h,
		Gather: wgather.Config{
			Window:       *gatherWindow,
			MaxFileBytes: *gatherBytes,
			Sink:         sink,
		},
		DRC: nfsd.DRCConfig{Enabled: *drcOn, MaxBytes: *drcBytes},
		Obs: reg,
	})
	if *slowMS > 0 {
		svc.SpanTable().EnableSlowLog(os.Stderr, time.Duration(*slowMS)*time.Millisecond)
	}
	if zfs != nil {
		registerZoneStats(reg, zfs)
	}

	// Optional fault injection: a seeded injector on the server's wire
	// path, so a lossy network is reproducible from the command line.
	var faults *rpcnet.FaultInjector
	if *faultSpec != "" {
		cfg, err := rpcnet.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve:", err)
			os.Exit(2)
		}
		cfg.Seed = *faultSeed
		faults = rpcnet.NewFaultInjector(cfg)
		registerFaultStats(reg, faults)
	}

	// Optional trace capture: every served RPC is appended to the .nft
	// file and flushed on shutdown.
	var capt *nfstrace.Capture
	var tap rpcnet.Tap
	if *trace != "" {
		w, err := tracefile.Create(*trace, time.Now())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve:", err)
			os.Exit(1)
		}
		capt = nfstrace.NewCapture(w)
		tap = capt.Tap
		reg.CounterFunc("nfstrace_records_total", capt.Total)
	}

	srv, err := nfsd.NewServerOpts(*addr, svc, rpcnet.ServerOptions{
		Tap:    tap,
		Faults: faults,
		Spans:  svc.SpanTable(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve:", err)
		os.Exit(1)
	}

	var adm *obs.AdminServer
	if *admin != "" {
		// /statsz carries the environment block so a scraped snapshot is
		// self-identifying the way a saved benchmark artifact is.
		adm, err = obs.ServeAdminMeta(*admin, reg, bench.CollectEnvMeta())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve: admin:", err)
			os.Exit(1)
		}
		fmt.Printf("admin on http://%s (/metrics /statsz /debug/pprof/)\n", adm.Addr())
	}
	fmt.Printf("listening on %s (udp+tcp), program %d version %d, heuristic %s, backend %s\n",
		srv.Addr(), nfsproto.Program, nfsproto.Version3, *heuristic, *backendKind)
	if zfs != nil {
		fmt.Printf("zone backend: %s, %s placement, %d MB cache\n",
			zfs.Model().Name, zfs.Placement(), *cacheMB)
	}
	fmt.Printf("write path: gather-window=%v sink=%s (verifier %016x)\n",
		*gatherWindow, *sinkKind, svc.WriteVerifier())
	if *trace != "" {
		fmt.Printf("tracing to %s\n", *trace)
	}
	if svc.DRCEnabled() {
		fmt.Printf("duplicate request cache: on (%d byte budget)\n", drcBudget(*drcBytes))
	}
	if faults != nil {
		fmt.Printf("fault injection: %s (seed %d)\n", *faultSpec, *faultSeed)
	}
	if *slowMS > 0 {
		fmt.Printf("slow-op log: requests over %dms to stderr\n", *slowMS)
	}

	printStats := func(prefix string) {
		st := svc.Stats()
		fmt.Printf("%sreads=%d bytes=%d maxSeqCount=%d writes=%d bytesWritten=%d commits=%d\n",
			prefix, st.Reads, st.BytesRead, st.MaxSeqCount, st.Writes, st.BytesWritten, st.Commits)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	// A nil ticker channel never fires, so the loop shape is the same
	// with stats reporting off.
	var tick <-chan time.Time
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		tick = ticker.C
	}
loop:
	for {
		select {
		case <-tick:
			printStats("")
		case <-stop:
			break loop
		}
	}

	// Orderly shutdown: stop accepting and wait for in-flight requests
	// (so the final stats line and the trace cover every served RPC),
	// flush remaining dirty data through the sink, then flush and close
	// the trace file, and exit 0.
	srv.Close()
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve: flush:", err)
	}
	if adm != nil {
		adm.Close()
	}
	printStats("final: ")
	// Everything else comes from the registry — the same Dump that
	// backed /statsz and /metrics while the server was up.
	for _, line := range reg.Lines() {
		fmt.Printf("final: %s\n", line)
	}
	if capt != nil {
		if err := capt.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve: trace:", err)
			capt.Close()
			os.Exit(1)
		}
		if err := capt.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d records written to %s\n", capt.Total(), *trace)
	}
}

// drcBudget echoes the effective cache budget for the startup banner.
func drcBudget(maxBytes int) int {
	if maxBytes <= 0 {
		return drc.DefaultMaxBytes
	}
	return maxBytes
}

// registerFaultStats publishes the injector's per-direction counters,
// one labeled series per fault kind, so a lossy run's accounting shows
// up in /metrics and the final lines without a second code path.
func registerFaultStats(reg *obs.Registry, faults *rpcnet.FaultInjector) {
	kinds := []struct {
		name string
		get  func(rpcnet.FaultStats) int64
	}{
		{"messages", func(s rpcnet.FaultStats) int64 { return s.Messages }},
		{"drops", func(s rpcnet.FaultStats) int64 { return s.Drops }},
		{"dups", func(s rpcnet.FaultStats) int64 { return s.Dups }},
		{"delays", func(s rpcnet.FaultStats) int64 { return s.Delays }},
		{"truncates", func(s rpcnet.FaultStats) int64 { return s.Truncates }},
		{"stalls", func(s rpcnet.FaultStats) int64 { return s.Stalls }},
		{"resets", func(s rpcnet.FaultStats) int64 { return s.Resets }},
	}
	for _, d := range []struct {
		dir   int
		label string
	}{{rpcnet.DirIn, "in"}, {rpcnet.DirOut, "out"}} {
		dir := d.dir
		for _, k := range kinds {
			get := k.get
			reg.CounterFunc(
				fmt.Sprintf(`rpcnet_fault_%s_total{dir=%q}`, k.name, d.label),
				func() int64 { return get(faults.Stats(dir)) })
		}
	}
}

// registerZoneStats publishes the ZCAV stack's counters: filesystem
// demand hits/misses and simulated disk time, buffer cache activity,
// and the drive model's command accounting.
func registerZoneStats(reg *obs.Registry, zfs *zonefs.FS) {
	reg.CounterFunc("zonefs_demand_hits_total", func() int64 { return zfs.Stats().DemandHits })
	reg.CounterFunc("zonefs_demand_misses_total", func() int64 { return zfs.Stats().DemandMisses })
	reg.GaugeFunc("zonefs_disk_time_seconds", func() float64 { return zfs.Stats().DiskTime.Seconds() })
	reg.CounterFunc("buffercache_clusters_total", func() int64 { return zfs.CacheStats().Clusters })
	reg.CounterFunc("buffercache_readaheads_total", func() int64 { return zfs.CacheStats().ReadAheads })
	reg.CounterFunc("buffercache_evictions_total", func() int64 { return zfs.CacheStats().Evictions })
	reg.CounterFunc("disk_commands_total", func() int64 { return zfs.DiskStats().Commands })
	reg.CounterFunc("disk_streamed_total", func() int64 { return zfs.DiskStats().Streamed })
	reg.CounterFunc("disk_cache_hits_total", func() int64 { return zfs.DiskStats().CacheHits })
	reg.CounterFunc("disk_repositions_total", func() int64 { return zfs.DiskStats().Repositions })
	reg.GaugeFunc("disk_busy_seconds", func() float64 { return zfs.DiskStats().BusyTime.Seconds() })
}
