// Command nfsserve runs the live userspace NFS-like file service over
// real UDP and TCP sockets, with the paper's read-ahead heuristics
// running on its READ path. It is the zero-infrastructure way to poke
// at the protocol stack:
//
//	nfsserve -addr 127.0.0.1:12049 -file demo=4 -heuristic slowdown
//
// then read "demo" (4 MB of patterned data) with any client built on
// internal/memfs.DialClient, e.g. examples/liveserver.
//
// With -trace out.nft every served RPC is recorded to a .nft trace file
// (arrival time, stream, procedure, handle, offset, count, status,
// latency) that `nfstrace analyze` and `nfstrace replay` consume. On
// SIGINT the server stops accepting, prints a final stats line, flushes
// the trace and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"nfstricks/cmd/internal/filespec"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/tracefile"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "address to bind (UDP and TCP)")
		files     filespec.List
		heuristic = flag.String("heuristic", "slowdown", "read-ahead heuristic: default, slowdown, always, cursor")
		stats     = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 = off)")
		trace     = flag.String("trace", "", "record every served RPC to this .nft trace file")
	)
	flag.Var(&files, "file", "file to serve, as name=sizeMB (repeatable; default demo=4)")
	flag.Parse()

	var h readahead.Heuristic
	switch *heuristic {
	case "default":
		h = readahead.Default{}
	case "slowdown":
		h = readahead.SlowDown{}
	case "always":
		h = readahead.Always{}
	case "cursor":
		h = &readahead.CursorHeuristic{}
	default:
		fmt.Fprintf(os.Stderr, "nfsserve: unknown heuristic %q\n", *heuristic)
		os.Exit(2)
	}

	fs, names, err := filespec.BuildFS(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve:", err)
		os.Exit(2)
	}
	for _, name := range names {
		_, size, _ := fs.Lookup(name)
		fmt.Printf("serving %s (%d MB)\n", name, size>>20)
	}

	svc := memfs.NewService(fs, h, nil)

	// Optional trace capture: every served RPC is appended to the .nft
	// file and flushed on shutdown.
	var capt *nfstrace.Capture
	var tap rpcnet.Tap
	if *trace != "" {
		w, err := tracefile.Create(*trace, time.Now())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve:", err)
			os.Exit(1)
		}
		capt = nfstrace.NewCapture(w)
		tap = capt.Tap
	}

	srv, err := memfs.NewServerTap(*addr, svc, tap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s (udp+tcp), program %d version %d, heuristic %s\n",
		srv.Addr(), nfsproto.Program, nfsproto.Version3, *heuristic)
	if *trace != "" {
		fmt.Printf("tracing to %s\n", *trace)
	}

	printStats := func(prefix string) {
		st := svc.Stats()
		fmt.Printf("%sreads=%d bytes=%d maxSeqCount=%d\n",
			prefix, st.Reads, st.BytesRead, st.MaxSeqCount)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	// A nil ticker channel never fires, so the loop shape is the same
	// with stats reporting off.
	var tick <-chan time.Time
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		tick = ticker.C
	}
loop:
	for {
		select {
		case <-tick:
			printStats("")
		case <-stop:
			break loop
		}
	}

	// Orderly shutdown: stop accepting and wait for in-flight requests
	// (so the final stats line and the trace cover every served RPC),
	// then flush and close the trace file, and exit 0.
	srv.Close()
	printStats("final: ")
	if capt != nil {
		if err := capt.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve: trace:", err)
			capt.Close()
			os.Exit(1)
		}
		if err := capt.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d records written to %s\n", capt.Total(), *trace)
	}
}
