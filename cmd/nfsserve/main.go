// Command nfsserve runs the live userspace NFS-like file service over
// real UDP and TCP sockets, with the paper's read-ahead heuristics
// running on its READ path. It is the zero-infrastructure way to poke
// at the protocol stack:
//
//	nfsserve -addr 127.0.0.1:12049 -file demo=4 -heuristic slowdown
//
// then read "demo" (4 MB of patterned data) with any client built on
// internal/memfs.DialClient, e.g. examples/liveserver.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "address to bind (UDP and TCP)")
		files     multiFlag
		heuristic = flag.String("heuristic", "slowdown", "read-ahead heuristic: default, slowdown, always, cursor")
		stats     = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 = off)")
	)
	flag.Var(&files, "file", "file to serve, as name=sizeMB (repeatable; default demo=4)")
	flag.Parse()

	if len(files) == 0 {
		files = multiFlag{"demo=4"}
	}

	var h readahead.Heuristic
	switch *heuristic {
	case "default":
		h = readahead.Default{}
	case "slowdown":
		h = readahead.SlowDown{}
	case "always":
		h = readahead.Always{}
	case "cursor":
		h = &readahead.CursorHeuristic{}
	default:
		fmt.Fprintf(os.Stderr, "nfsserve: unknown heuristic %q\n", *heuristic)
		os.Exit(2)
	}

	fs := memfs.NewFS()
	for _, spec := range files {
		name, sizeMB, err := parseFileSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfsserve:", err)
			os.Exit(2)
		}
		data := make([]byte, sizeMB<<20)
		for i := range data {
			data[i] = byte(i * 2654435761)
		}
		fs.Create(name, data)
		fmt.Printf("serving %s (%d MB)\n", name, sizeMB)
	}

	svc := memfs.NewService(fs, h, nil)
	srv, err := memfs.NewServer(*addr, svc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfsserve:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("listening on %s (udp+tcp), program %d version %d, heuristic %s\n",
		srv.Addr(), nfsproto.Program, nfsproto.Version3, *heuristic)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				st := svc.Stats()
				fmt.Printf("reads=%d bytes=%d maxSeqCount=%d\n",
					st.Reads, st.BytesRead, st.MaxSeqCount)
			case <-stop:
				return
			}
		}
	}
	<-stop
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func parseFileSpec(spec string) (string, int, error) {
	name, sizeStr, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("bad -file %q, want name=sizeMB", spec)
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size <= 0 || size > 1024 {
		return "", 0, fmt.Errorf("bad size in -file %q", spec)
	}
	return name, size, nil
}
