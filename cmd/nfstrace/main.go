// Command nfstrace works with .nft trace files — captured live NFS
// request streams (see internal/tracefile for the format):
//
//	nfstrace capture -o out.nft -file demo=4 [-synthetic] [-duration 30s]
//	nfstrace info out.nft
//	nfstrace analyze out.nft
//	nfstrace replay -addr HOST:PORT [-network tcp] [-speed 1] [-open] out.nft
//
// capture serves a live file store with tracing enabled until the
// duration elapses or SIGINT arrives; with -synthetic it also drives a
// built-in multi-stream workload (reads plus an UNSTABLE-write/COMMIT
// stream) against itself and exits, which is the one-command way to
// produce a demo trace. info prints the header and summary counts,
// analyze runs the paper's reordering/sequentiality analysis plus the
// write-side view (stability mix, WRITE→COMMIT distances), and replay
// plays the trace back against a live server (nfsserve, or anything
// speaking the same protocol subset).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"nfstricks/cmd/internal/filespec"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/replay"
	"nfstricks/internal/tracefile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "capture":
		err = cmdCapture(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nfstrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfstrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nfstrace capture -o out.nft [-addr 127.0.0.1:0] [-file name=sizeMB]... [-synthetic] [-duration 0]
  nfstrace info TRACE.nft
  nfstrace analyze TRACE.nft
  nfstrace replay -addr HOST:PORT [-network tcp|udp] [-speed N] [-open] [-timeout 10s] TRACE.nft`)
}

// traceArg returns the single positional trace-file argument.
func traceArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("want exactly one trace file argument, have %d", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdCapture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	var (
		out       = fs.String("o", "", "trace file to write (required)")
		addr      = fs.String("addr", "127.0.0.1:0", "address to serve (UDP and TCP)")
		files     filespec.List
		synthetic = fs.Bool("synthetic", false, "drive a built-in multi-stream workload and exit")
		duration  = fs.Duration("duration", 0, "stop after this long (0 = until SIGINT)")
	)
	fs.Var(&files, "file", "file to serve, as name=sizeMB (repeatable; default demo=4)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("capture: -o is required")
	}

	store, names, err := filespec.BuildFS(files)
	if err != nil {
		return err
	}

	w, err := tracefile.Create(*out, time.Now())
	if err != nil {
		return err
	}
	capt := nfstrace.NewCapture(w)
	srv, err := memfs.NewServerTap(*addr, memfs.NewService(store, nil, nil), capt.Tap)
	if err != nil {
		capt.Close()
		return err
	}
	fmt.Printf("capturing on %s (udp+tcp) to %s\n", srv.Addr(), *out)

	if *synthetic {
		if err := syntheticWorkload(srv.Addr(), names); err != nil {
			srv.Close()
			capt.Close()
			return err
		}
	} else {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		if *duration > 0 {
			select {
			case <-time.After(*duration):
			case <-stop:
			}
		} else {
			<-stop
		}
	}
	srv.Close()
	if err := capt.Err(); err != nil {
		capt.Close()
		return err
	}
	if err := capt.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d records to %s\n", capt.Total(), *out)
	return nil
}

// syntheticWorkload reads every served file over a mix of transports
// with small think times, then rewrites a slice of each file as an
// UNSTABLE write-behind stream capped by a COMMIT, and finally runs a
// metadata stream (MKDIR/CREATE/RENAME/READDIR/REMOVE) — enough
// structure that analyze (reordering, stability mix, WRITE→COMMIT
// distances, op mix with namespace calls) and faithful replay have
// something to show.
func syntheticWorkload(addr string, built []filespec.File) error {
	errs := make(chan error, 2*len(built))
	n := 0
	for i, f := range built {
		for _, network := range []string{"udp", "tcp"} {
			n++
			go func(network, path string, stride int) {
				errs <- func() error {
					c, err := memfs.DialClient(network, addr)
					if err != nil {
						return err
					}
					defer c.Close()
					fh, size, err := c.LookupPath(path)
					if err != nil {
						return err
					}
					for off := uint64(0); off < uint64(size); off += 8192 * uint64(stride) {
						if _, _, err := c.Read(fh, off, 8192); err != nil {
							return err
						}
						time.Sleep(time.Millisecond)
					}
					if network != "tcp" {
						return nil
					}
					// The write stream: rewrite the file's head through a
					// write-behind window, one COMMIT per 16 writes.
					wb := c.NewWriteBehind(fh, 8)
					buf := make([]byte, 8192)
					for k := 0; k < 64; k++ {
						off := uint64(k) * 8192 % uint64(size)
						if err := wb.Write(off, buf); err != nil {
							return err
						}
						if (k+1)%16 == 0 {
							if _, err := wb.Commit(); err != nil {
								return err
							}
						}
					}
					_, err = wb.Commit()
					return err
				}()
			}(network, f.Path, 1+i%3)
		}
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return metadataStream(addr)
}

// metadataStream exercises the namespace procedures against the live
// server: a scratch directory filled with small files, stats, a few
// renames, a paged READDIR scan, then removal of everything — so a
// synthetic capture's op mix includes the metadata path.
func metadataStream(addr string) error {
	c, err := memfs.DialClient("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	dir, err := c.Mkdir(memfs.RootFH, "meta")
	if err != nil {
		return err
	}
	const files = 24
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f%02d", i)
		if _, err := c.Create(dir, name, 512); err != nil {
			return err
		}
		fh, _, err := c.Lookup(dir, name)
		if err != nil {
			return err
		}
		if _, err := c.Getattr(fh); err != nil {
			return err
		}
	}
	for i := 0; i < files; i += 4 {
		from := fmt.Sprintf("f%02d", i)
		if err := c.Rename(dir, from, dir, from+".r"); err != nil {
			return err
		}
	}
	entries, err := c.ReaddirAll(dir, 8)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := c.Remove(dir, e.Name); err != nil {
			return err
		}
	}
	return c.Remove(memfs.RootFH, "meta")
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	hdr, recs, err := tracefile.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: .nft version %d\n", path, hdr.Version)
	fmt.Printf("captured: %s\n", hdr.Start.Format(time.RFC3339))
	fmt.Printf("records:  %d\n", len(recs))
	if len(recs) == 0 {
		return nil
	}
	streams := make(map[uint32]int64)
	minWhen, maxWhen := recs[0].When, recs[0].When
	var rpcErrs, nfsErrs, retrans int64
	for _, r := range recs {
		streams[r.Stream]++
		if r.When < minWhen {
			minWhen = r.When
		}
		if r.When > maxWhen {
			maxWhen = r.When
		}
		if r.Status&tracefile.StatusRetransmit != 0 {
			retrans++
		}
		// Flag bits masked off: a retransmitted call's error still counts
		// by its underlying status.
		switch status := r.Status &^ uint32(tracefile.StatusFlags); {
		case r.Status&tracefile.StatusRPCError != 0:
			rpcErrs++
		case status != nfsproto.OK && r.Proc != nfsproto.ProcNull:
			nfsErrs++
		}
	}
	fmt.Printf("streams:  %d\n", len(streams))
	fmt.Printf("span:     %v\n", (maxWhen - minWhen).Round(time.Millisecond))
	fmt.Printf("errors:   %d rpc, %d nfs\n", rpcErrs, nfsErrs)
	fmt.Printf("retrans:  %d\n", retrans)
	mix := nfstrace.OpMix(nfstrace.FromTracefile(recs))
	fmt.Printf("op mix:   %s\n", nfstrace.FormatOpMix(mix, nfsproto.ProcName))
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	fs.Parse(args)
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	// One read, one arrival-order sort; both the merged analysis and
	// the per-stream view are derived from it.
	_, raw, err := tracefile.ReadFile(path)
	if err != nil {
		return err
	}
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].When < raw[j].When })
	recs := nfstrace.FromTracefile(raw)
	a := nfstrace.Analyze(recs, nfsproto.ProcRead)
	fmt.Println(a.String())
	mean, max := nfstrace.InterarrivalStats(recs)
	fmt.Printf("interarrival: mean=%v max=%v\n", mean.Round(time.Microsecond), max.Round(time.Microsecond))

	// The write side of the capture: stability mix and how far WRITEs
	// sit from the COMMIT that makes them stable.
	if mix := nfstrace.WriteStabilityMix(raw); mix[0]+mix[1]+mix[2] > 0 {
		fmt.Printf("write stability: %s\n", nfstrace.FormatWriteStabilityMix(mix))
		fmt.Printf("write→commit: %s\n", nfstrace.CommitDistances(raw).String())
	}

	// Per-stream reorder fractions: the per-connection view of the
	// paper's §6 measurement.
	byStream := make(map[uint32][]nfstrace.Record)
	for i, r := range raw {
		byStream[r.Stream] = append(byStream[r.Stream], recs[i])
	}
	var ids []uint32
	for id := range byStream {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sa := nfstrace.Analyze(byStream[id], nfsproto.ProcRead)
		fmt.Printf("stream %d: %s\n", id, sa.String())
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "target server address (required)")
		network = fs.String("network", "tcp", "transport: tcp or udp")
		speed   = fs.Float64("speed", 1, "schedule: 0 = as fast as possible, 1 = timestamp-faithful, N = gaps divided by N")
		open    = fs.Bool("open", false, "open-loop dispatch (fire on schedule without waiting for replies)")
		timeout = fs.Duration("timeout", 10*time.Second, "per-reply wait bound")
	)
	fs.Parse(args)
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("replay: -addr is required")
	}
	opts := replay.Options{
		Network: *network, Addr: *addr,
		OpenLoop: *open, Timeout: *timeout,
	}
	switch {
	case *speed == 0:
		opts.Timing = replay.AsFast
	case *speed == 1:
		opts.Timing = replay.Faithful
	default:
		opts.Timing = replay.Scaled
		opts.Speed = *speed
	}
	st, err := replay.File(path, opts)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (%s, %s, %s loop)\n", path, opts.Timing, *network,
		map[bool]string{true: "open", false: "closed"}[*open])
	fmt.Println(st.String())
	return nil
}
