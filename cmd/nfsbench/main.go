// Command nfsbench reproduces the tables and figures of "NFS Tricks and
// Benchmarking Traps" (Ellard & Seltzer, FREENIX 2003) on the simulated
// testbed.
//
// Usage:
//
//	nfsbench -exp fig1            # one experiment at full scale
//	nfsbench -exp all -scale 4    # everything, 64 MB per iteration
//	nfsbench -list                # show available experiments
//	nfsbench -exp table1 -csv out.csv
//	nfsbench -exp live-scale      # real-socket saturation: clients vs nfsheur shards
//	nfsbench -exp alloc-profile   # allocator cost per live RPC (B/op, allocs/op)
//	nfsbench -exp trace-replay    # capture a live run, replay it at several schedules
//	nfsbench -exp trace-replay -json BENCH.json
//	nfsbench compare -gate OLD.json NEW.json   # flag regressions beyond run-to-run noise
//	nfsbench compare -exp fig1 -bin-a ./old-nfsbench -bin-b ./new-nfsbench
//
// Scale divides the paper's file sizes (scale 1 = the full 256 MB per
// reader-count iteration); runs is the repetition count per cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nfstricks/internal/bench"
)

// printExperiments writes the experiment table, one "id  title" row
// per registered experiment plus the "all" pseudo-id.
func printExperiments(w io.Writer) {
	for _, e := range bench.Experiments() {
		fmt.Fprintf(w, "  %-16s %s\n", e.ID, e.Title)
	}
	fmt.Fprintf(w, "  %-16s %s\n", "all", "run every experiment")
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		list    = flag.Bool("list", false, "list experiments and exit")
		runs    = flag.Int("runs", 10, "runs per cell")
		scale   = flag.Int("scale", 1, "divide the paper's file sizes by this factor")
		seed    = flag.Int64("seed", 1, "base random seed")
		csv     = flag.String("csv", "", "also write results as CSV to this file")
		jsonOut = flag.String("json", "", "also write results as JSON to this file")
		verify  = flag.Bool("verify", false, "check the paper's shape claims against the results")
		profile = flag.String("profile", "", "write pprof profiles into this directory: one CPU profile per live experiment cell, one heap profile per experiment")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		printExperiments(os.Stdout)
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	params := bench.Params{Runs: *runs, Scale: *scale, Seed: *seed}
	if *profile != "" {
		if err := os.MkdirAll(*profile, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: %v\n", err)
			os.Exit(1)
		}
		params.ProfileDir = *profile
	}
	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "nfsbench: unknown experiment %q\n", id)
				fmt.Fprintln(os.Stderr, "available experiments:")
				printExperiments(os.Stderr)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	var csvOut strings.Builder
	var results []*bench.Result
	for _, e := range todo {
		start := time.Now()
		r, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n(%s in %.1fs, runs=%d scale=%d)\n\n",
			r.Format(), e.ID, time.Since(start).Seconds(), params.Runs, params.Scale)
		if *verify {
			if checks := bench.Verify(r); len(checks) > 0 {
				fmt.Printf("shape checks for %s:\n%s\n", r.ID, bench.FormatChecks(checks))
				for _, c := range checks {
					if !c.OK {
						defer os.Exit(1)
					}
				}
			}
		}
		if *csv != "" {
			csvOut.WriteString("# " + r.ID + "\n")
			csvOut.WriteString(r.CSV())
		}
		if *profile != "" {
			writeHeapProfile(*profile, e.ID)
		}
		results = append(results, r)
	}
	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(csvOut.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: writing %s: %v\n", *csv, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		ids := make([]string, len(todo))
		for i, e := range todo {
			ids[i] = e.ID
		}
		artifact := bench.Artifact{Meta: bench.CollectMeta(params, ids), Results: results}
		blob, err := json.MarshalIndent(artifact, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}

// writeHeapProfile snapshots the heap after one experiment finishes;
// profiling is best-effort and never fails the run.
func writeHeapProfile(dir, expID string) {
	f, err := os.Create(filepath.Join(dir, expID+".heap.pprof"))
	if err != nil {
		return
	}
	defer f.Close()
	runtime.GC() // get up-to-date allocation statistics
	pprof.WriteHeapProfile(f)
}
