package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nfstricks/internal/bench"
)

const compareUsage = `usage:
  nfsbench compare [flags] OLD.json NEW.json
      Compare two saved artifacts cell by cell.

  nfsbench compare [flags] -exp <ids> -bin-a <nfsbench-A> -bin-b <nfsbench-B>
      Run the experiments live across two prebuilt binaries (one per git
      ref), interleaving single-run rounds so machine drift lands on
      both sides.

  nfsbench compare [flags] -exp <ids>
      A/A mode: run the experiments twice in this process with different
      seeds — a noise-floor check that should always PASS.

Cells are paired by (experiment, series, x). Each pair gets a
Mann-Whitney U test plus bootstrap confidence intervals on the medians
and their shift; only differences that clear run-to-run noise are
flagged. Exit status with -gate: 0 pass, 1 regression (or error).
Pair -gate with -min-effect (or a tighter -alpha and more runs):
per-cell alpha over a wide sweep flags ~alpha/2 of cells spuriously.

flags:
`

// runCompare implements the compare verb; it returns the process exit
// code.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		gate      = fs.Bool("gate", false, "exit non-zero if any cell regresses beyond noise")
		alpha     = fs.Float64("alpha", 0.05, "Mann-Whitney significance level")
		conf      = fs.Float64("confidence", 0.95, "bootstrap confidence level")
		minEffect = fs.Float64("min-effect", 0, "ignore median shifts smaller than this percentage (effect floor for cross-machine runs)")
		resamples = fs.Int("resamples", 1000, "bootstrap resample count")
		report    = fs.String("report", "", "also write the report to this file")
		exp       = fs.String("exp", "", "experiment ids (comma-separated) for live mode")
		binA      = fs.String("bin-a", "", "old-side nfsbench binary for live two-ref mode")
		binB      = fs.String("bin-b", "", "new-side nfsbench binary for live two-ref mode")
		rounds    = fs.Int("rounds", 5, "interleaved rounds per side in live mode")
		scale     = fs.Int("scale", 1, "live mode: divide the paper's file sizes by this factor")
		seed      = fs.Int64("seed", 1, "live mode: base seed for the old side")
		seedB     = fs.Int64("seed-b", 1001, "live mode: base seed for the new side")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, compareUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	opt := bench.CompareOptions{
		Alpha:        *alpha,
		Confidence:   *conf,
		MinEffectPct: *minEffect,
		Resamples:    *resamples,
		Seed:         1,
	}

	var old, new *bench.Artifact
	var err error
	switch {
	case *exp == "" && fs.NArg() == 2:
		old, err = bench.LoadArtifact(fs.Arg(0))
		if err == nil {
			new, err = bench.LoadArtifact(fs.Arg(1))
		}
	case *exp != "" && fs.NArg() == 0:
		if (*binA == "") != (*binB == "") {
			fmt.Fprintln(os.Stderr, "nfsbench compare: -bin-a and -bin-b must be given together")
			return 2
		}
		old, new, err = runCompareLive(*exp, *binA, *binB, *rounds, *scale, *seed, *seedB)
	default:
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench compare: %v\n", err)
		return 1
	}

	c := bench.CompareArtifacts(old, new, opt)
	out := c.Format()
	fmt.Print(out)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(out), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench compare: writing %s: %v\n", *report, err)
			return 1
		}
	}
	if *gate && len(c.Regressions()) > 0 {
		return 1
	}
	return 0
}

// runCompareLive executes the named experiments for both sides with
// interleaved rounds and packages each side as an artifact. With
// binaries given, each side execs its prebuilt nfsbench (two-ref
// mode); without, both sides run in-process with different seeds (A/A).
func runCompareLive(expList, binA, binB string, rounds, scale int, seedA, seedB int64) (*bench.Artifact, *bench.Artifact, error) {
	p := bench.Params{Runs: 1, Scale: scale, Seed: seedA}
	ids := strings.Split(expList, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	old := &bench.Artifact{Meta: bench.CollectMeta(p, ids)}
	new := &bench.Artifact{Meta: bench.CollectMeta(bench.Params{Runs: 1, Scale: scale, Seed: seedB}, ids)}
	for _, id := range ids {
		var a, b bench.RoundRunner
		if binA != "" {
			a = bench.BinaryRunner(binA, id, p, seedA)
			b = bench.BinaryRunner(binB, id, p, seedB)
		} else {
			e, ok := bench.Lookup(id)
			if !ok {
				return nil, nil, fmt.Errorf("unknown experiment %q", id)
			}
			a = bench.InProcessRunner(e, p, seedA)
			b = bench.InProcessRunner(e, p, seedB)
		}
		fmt.Fprintf(os.Stderr, "compare: running %s, %d interleaved rounds per side\n", id, rounds)
		ra, rb, err := bench.RunInterleaved(a, b, rounds)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", id, err)
		}
		old.Results = append(old.Results, ra)
		new.Results = append(new.Results, rb)
	}
	return old, new, nil
}
