// Command zcavprofile prints the zone profile of the simulated drives:
// per-zone cylinder ranges, sectors per track, and media transfer rates
// — the data behind the paper's §5.1 ZCAV discussion. It is the
// equivalent of running a ZCAV probe tool against the drive models.
package main

import (
	"flag"
	"fmt"
	"os"

	"nfstricks/internal/disk"
)

func main() {
	which := flag.String("disk", "both", "disk to profile: scsi, ide, or both")
	flag.Parse()

	models := map[string]*disk.Model{
		"scsi": disk.IBMDDYS36950(),
		"ide":  disk.WD200BB(),
	}
	names := []string{"scsi", "ide"}
	if *which != "both" {
		if _, ok := models[*which]; !ok {
			fmt.Fprintf(os.Stderr, "zcavprofile: unknown disk %q\n", *which)
			os.Exit(2)
		}
		names = []string{*which}
	}

	for _, name := range names {
		m := models[name]
		fmt.Printf("%s: %s\n", name, m.Name)
		fmt.Printf("  %.1f GB, %d RPM, %d heads, %d cylinders, rev %.2f ms\n",
			float64(m.Geo.TotalBytes())/1e9, m.RPM, m.Heads,
			m.Geo.Cylinders(), m.RevTime().Seconds()*1e3)
		fmt.Printf("  seek single/avg/full: %v / %v / %v\n",
			m.SeekSingle, m.SeekAvg, m.SeekFull)
		fmt.Printf("  %-6s %-12s %-10s %-12s\n", "zone", "cylinders", "spt", "media MB/s")
		cyl := 0
		for i, z := range m.Geo.Zones {
			startLBA := m.Geo.LBAOfCylinder(cyl)
			fmt.Printf("  %-6d %5d-%-6d %-10d %-12.1f\n",
				i, cyl, cyl+z.Cylinders-1, z.SectorsPerTrack,
				m.MediaRateAt(startLBA)/1e6)
			cyl += z.Cylinders
		}
		outer := m.MediaRateAt(0)
		inner := m.MediaRateAt(m.Geo.TotalSectors() - 1)
		fmt.Printf("  ZCAV outer:inner = %.2f:1\n", outer/inner)
		fmt.Println()
		parts := m.Geo.QuarterPartitions(name)
		for _, p := range parts {
			fmt.Printf("  partition %-8s LBA %11d..%-11d media %.1f MB/s\n",
				p.Name, p.StartLBA, p.StartLBA+p.Sectors-1,
				m.MediaRateAt(p.StartLBA)/1e6)
		}
		fmt.Println()
	}
}
