// Package filespec parses the -file name=sizeMB flags the live-server
// commands (nfsserve, nfstrace capture) share, and builds the patterned
// file store they serve.
package filespec

import (
	"fmt"
	"strconv"
	"strings"

	"nfstricks/internal/memfs"
)

// List collects repeated -file flags (flag.Value).
type List []string

// String joins the collected specs.
func (m *List) String() string { return strings.Join(*m, ",") }

// Set appends one spec.
func (m *List) Set(v string) error { *m = append(*m, v); return nil }

// Parse splits a name=sizeMB spec.
func Parse(spec string) (name string, sizeMB int, err error) {
	name, sizeStr, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("bad -file %q, want name=sizeMB", spec)
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size <= 0 || size > 1024 {
		return "", 0, fmt.Errorf("bad size in -file %q", spec)
	}
	return name, size, nil
}

// BuildFS creates a store holding every spec'd file filled with
// patterned data, returning the names in spec order. Empty specs
// default to demo=4.
func BuildFS(specs []string) (*memfs.FS, []string, error) {
	if len(specs) == 0 {
		specs = []string{"demo=4"}
	}
	fs := memfs.NewFS()
	var names []string
	for _, spec := range specs {
		name, sizeMB, err := Parse(spec)
		if err != nil {
			return nil, nil, err
		}
		data := make([]byte, sizeMB<<20)
		for i := range data {
			data[i] = byte(i * 2654435761)
		}
		fs.Create(name, data)
		names = append(names, name)
	}
	return fs, names, nil
}
