// Package filespec parses the -file path=sizeMB flags the live-server
// commands (nfsserve, nfstrace capture) share, and builds the patterned
// file store they serve. Paths may be nested ("dir/sub/name=4"): parent
// directories are created on the way down, and directories shared by
// several specs are created once.
package filespec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/vfs"
)

// List collects repeated -file flags (flag.Value).
type List []string

// String joins the collected specs.
func (m *List) String() string { return strings.Join(*m, ",") }

// Set appends one spec.
func (m *List) Set(v string) error { *m = append(*m, v); return nil }

// File is one built file: its spec path and the handle and size it got.
type File struct {
	Path string
	FH   nfsproto.FH
	Size int64
}

// Parse splits a path=sizeMB spec.
func Parse(spec string) (path string, sizeMB int, err error) {
	path, sizeStr, ok := strings.Cut(spec, "=")
	if !ok || path == "" {
		return "", 0, fmt.Errorf("bad -file %q, want path=sizeMB", spec)
	}
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			return "", 0, fmt.Errorf("bad path in -file %q (empty component)", spec)
		}
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size <= 0 || size > 1024 {
		return "", 0, fmt.Errorf("bad size in -file %q", spec)
	}
	return path, size, nil
}

// mkdirAll walks path's directory components from the root, creating
// what is missing, and returns the final directory's handle plus the
// file's base name.
func mkdirAll(b vfs.Backend, path string) (nfsproto.FH, string, error) {
	parts := strings.Split(path, "/")
	dir := vfs.RootFH
	for _, part := range parts[:len(parts)-1] {
		fh, attr, err := b.Lookup(dir, part)
		switch {
		case err == nil:
			if !attr.Dir {
				return 0, "", fmt.Errorf("%s in %q is a file, not a directory", part, path)
			}
			dir = fh
		case errors.Is(err, vfs.ErrNoEnt):
			if fh, err = b.Mkdir(dir, part); err != nil {
				return 0, "", fmt.Errorf("mkdir %s in %q: %w", part, path, err)
			}
			dir = fh
		default:
			return 0, "", fmt.Errorf("lookup %s in %q: %w", part, path, err)
		}
	}
	return dir, parts[len(parts)-1], nil
}

// BuildInto creates every spec'd file, filled with patterned data, in
// an existing backend — parent directories included — returning the
// built files in spec order. Empty specs default to demo=4.
func BuildInto(b vfs.Backend, specs []string) ([]File, error) {
	if len(specs) == 0 {
		specs = []string{"demo=4"}
	}
	var files []File
	for _, spec := range specs {
		path, sizeMB, err := Parse(spec)
		if err != nil {
			return nil, err
		}
		dir, name, err := mkdirAll(b, path)
		if err != nil {
			return nil, err
		}
		data := make([]byte, sizeMB<<20)
		for i := range data {
			data[i] = byte(i * 2654435761)
		}
		fh, err := b.Create(dir, name, data)
		if err != nil {
			return nil, fmt.Errorf("creating %s (%d MB): %w", path, sizeMB, err)
		}
		files = append(files, File{Path: path, FH: fh, Size: int64(len(data))})
	}
	return files, nil
}

// BuildFS is BuildInto on a fresh in-memory store.
func BuildFS(specs []string) (*memfs.FS, []File, error) {
	fs := memfs.NewFS()
	files, err := BuildInto(fs, specs)
	if err != nil {
		return nil, nil, err
	}
	return fs, files, nil
}
