// Package filespec parses the -file name=sizeMB flags the live-server
// commands (nfsserve, nfstrace capture) share, and builds the patterned
// file store they serve.
package filespec

import (
	"fmt"
	"strconv"
	"strings"

	"nfstricks/internal/memfs"
	"nfstricks/internal/vfs"
)

// List collects repeated -file flags (flag.Value).
type List []string

// String joins the collected specs.
func (m *List) String() string { return strings.Join(*m, ",") }

// Set appends one spec.
func (m *List) Set(v string) error { *m = append(*m, v); return nil }

// Parse splits a name=sizeMB spec.
func Parse(spec string) (name string, sizeMB int, err error) {
	name, sizeStr, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("bad -file %q, want name=sizeMB", spec)
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size <= 0 || size > 1024 {
		return "", 0, fmt.Errorf("bad size in -file %q", spec)
	}
	return name, size, nil
}

// BuildInto creates every spec'd file, filled with patterned data, in
// an existing backend, returning the names in spec order. Empty specs
// default to demo=4.
func BuildInto(b vfs.Backend, specs []string) ([]string, error) {
	if len(specs) == 0 {
		specs = []string{"demo=4"}
	}
	var names []string
	for _, spec := range specs {
		name, sizeMB, err := Parse(spec)
		if err != nil {
			return nil, err
		}
		data := make([]byte, sizeMB<<20)
		for i := range data {
			data[i] = byte(i * 2654435761)
		}
		if b.Create(name, data) == 0 {
			return nil, fmt.Errorf("creating %s (%d MB): backend out of space", name, sizeMB)
		}
		names = append(names, name)
	}
	return names, nil
}

// BuildFS is BuildInto on a fresh in-memory store.
func BuildFS(specs []string) (*memfs.FS, []string, error) {
	fs := memfs.NewFS()
	names, err := BuildInto(fs, specs)
	if err != nil {
		return nil, nil, err
	}
	return fs, names, nil
}
