package filespec

import (
	"strings"
	"testing"

	"nfstricks/internal/memfs"
	"nfstricks/internal/vfs"
)

func TestParse(t *testing.T) {
	good := []struct {
		spec string
		path string
		size int
	}{
		{"demo=4", "demo", 4},
		{"dir/sub/name=4", "dir/sub/name", 4},
		{"a/b=1", "a/b", 1},
		{"deep/er/and/deeper/f=1024", "deep/er/and/deeper/f", 1024},
	}
	for _, g := range good {
		path, size, err := Parse(g.spec)
		if err != nil || path != g.path || size != g.size {
			t.Errorf("Parse(%q) = %q, %d, %v; want %q, %d", g.spec, path, size, err, g.path, g.size)
		}
	}

	bad := []string{
		"",          // no separator
		"demo",      // no size
		"=4",        // empty path
		"a//b=1",    // empty middle component
		"/a=1",      // empty leading component
		"a/=1",      // empty trailing component
		"a=0",       // zero size
		"a=-3",      // negative size
		"a=1025",    // over the 1 GB cap
		"a=4potato", // junk size
	}
	for _, spec := range bad {
		if _, _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestBuildIntoNestedPaths(t *testing.T) {
	fs := memfs.NewFS()
	built, err := BuildInto(fs, []string{"dir/sub/a=1", "dir/b=1", "top=1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 3 {
		t.Fatalf("built %d files, want 3", len(built))
	}
	for _, f := range built {
		if f.Size != 1<<20 {
			t.Errorf("%s: size %d, want %d", f.Path, f.Size, 1<<20)
		}
	}

	// The intermediate directories exist and are directories.
	dirFH, attr, err := fs.Lookup(vfs.RootFH, "dir")
	if err != nil || !attr.Dir {
		t.Fatalf("dir: attr=%+v err=%v", attr, err)
	}
	subFH, attr, err := fs.Lookup(dirFH, "sub")
	if err != nil || !attr.Dir {
		t.Fatalf("dir/sub: attr=%+v err=%v", attr, err)
	}
	if fh, attr, err := fs.Lookup(subFH, "a"); err != nil || attr.Dir || fh != built[0].FH {
		t.Fatalf("dir/sub/a: fh=%v attr=%+v err=%v", fh, attr, err)
	}
	if fh, attr, err := fs.Lookup(dirFH, "b"); err != nil || attr.Dir || fh != built[1].FH {
		t.Fatalf("dir/b: fh=%v attr=%+v err=%v", fh, attr, err)
	}
	if _, attr, err := fs.Lookup(vfs.RootFH, "top"); err != nil || attr.Dir {
		t.Fatalf("top: attr=%+v err=%v", attr, err)
	}
}

func TestBuildIntoSharedDirCreatedOnce(t *testing.T) {
	fs := memfs.NewFS()
	built, err := BuildInto(fs, []string{"shared/a=1", "shared/b=1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 2 {
		t.Fatalf("built %d files, want 2", len(built))
	}
	// Root holds exactly one entry: the shared directory, reused for
	// the second spec rather than erroring or duplicating.
	page, err := fs.Readdir(vfs.RootFH, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].Name != "shared" {
		t.Fatalf("root entries = %+v, want just \"shared\"", page.Entries)
	}
	dir := page.Entries[0].FH
	page, err = fs.Readdir(dir, 0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 {
		t.Fatalf("shared/ holds %d entries, want 2", len(page.Entries))
	}
}

func TestBuildIntoFileBlocksPath(t *testing.T) {
	fs := memfs.NewFS()
	if _, err := BuildInto(fs, []string{"a=1", "a/b=1"}); err == nil {
		t.Fatal("building under a file accepted, want error")
	} else if !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("err = %v, want a not-a-directory complaint", err)
	}
}

func TestBuildIntoDefaultsAndPattern(t *testing.T) {
	fs, built, err := BuildFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 1 || built[0].Path != "demo" || built[0].Size != 4<<20 {
		t.Fatalf("default build = %+v, want demo at 4 MB", built)
	}
	// The fill is patterned, not zero.
	data, _, err := fs.Read(built[0].FH, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("built file reads back as zeros, want patterned data")
	}
}
