package nfstricks

// One testing.B benchmark per paper table/figure, plus ablations. Each
// iteration reproduces the experiment on a scaled-down file set (the
// full-scale reproduction is `nfsbench -exp <id>`); the reported custom
// metrics are the figure's headline numbers, so `go test -bench .`
// doubles as a smoke-check of the paper's shapes.

import (
	"testing"

	"nfstricks/internal/bench"
)

// benchParams keeps testing.B runs fast: 1 run per cell at 1/32 of the
// paper's file sizes (8 MB per reader-count iteration).
func benchParams(i int) bench.Params {
	return bench.Params{Runs: 1, Scale: 32, Seed: int64(i + 1)}
}

// runExperiment executes the experiment once per b.N with varying seeds
// and reports headline series means as custom metrics.
func runExperiment(b *testing.B, id string, metrics map[string]metricSpec) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		r, err := e.Run(benchParams(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for name, spec := range metrics {
		s, ok := last.SeriesByLabel(spec.series)
		if !ok {
			b.Fatalf("%s: series %q missing", id, spec.series)
		}
		if spec.x >= len(s.Samples) {
			b.Fatalf("%s: series %q has %d samples", id, spec.series, len(s.Samples))
		}
		b.ReportMetric(s.Samples[spec.x].Mean, name)
	}
}

type metricSpec struct {
	series string
	x      int // index into the X sweep
}

// BenchmarkFig1ZCAV reproduces Figure 1: outer partitions beat inner.
func BenchmarkFig1ZCAV(b *testing.B) {
	runExperiment(b, "fig1", map[string]metricSpec{
		"ide1-1rdr-MB/s":  {"ide1", 0},
		"ide4-1rdr-MB/s":  {"ide4", 0},
		"scsi1-1rdr-MB/s": {"scsi1", 0},
	})
}

// BenchmarkFig2TaggedQueues reproduces Figure 2: disabling TCQ wins for
// concurrent sequential readers.
func BenchmarkFig2TaggedQueues(b *testing.B) {
	runExperiment(b, "fig2", map[string]metricSpec{
		"scsi1-notags-8rdr-MB/s": {"scsi1/no tags", 3},
		"scsi1-tags-8rdr-MB/s":   {"scsi1/tags", 3},
	})
}

// BenchmarkFig3Fairness reproduces Figure 3: Elevator staircase vs flat
// N-CSCAN.
func BenchmarkFig3Fairness(b *testing.B) {
	runExperiment(b, "fig3", map[string]metricSpec{
		"elev-first-s":   {"ide1/elev", 0},
		"elev-last-s":    {"ide1/elev", 7},
		"ncscan-first-s": {"ide1/ncscan", 0},
		"ncscan-last-s":  {"ide1/ncscan", 7},
	})
}

// BenchmarkFig4NFSUDP reproduces Figure 4.
func BenchmarkFig4NFSUDP(b *testing.B) {
	runExperiment(b, "fig4", map[string]metricSpec{
		"ide1-1rdr-MB/s":  {"ide1", 0},
		"ide1-32rdr-MB/s": {"ide1", 5},
	})
}

// BenchmarkFig5NFSTCP reproduces Figure 5.
func BenchmarkFig5NFSTCP(b *testing.B) {
	runExperiment(b, "fig5", map[string]metricSpec{
		"ide1-1rdr-MB/s":  {"ide1", 0},
		"ide1-32rdr-MB/s": {"ide1", 5},
	})
}

// BenchmarkFig6ReadAhead reproduces Figure 6: the potential of
// read-ahead, idle vs busy client.
func BenchmarkFig6ReadAhead(b *testing.B) {
	runExperiment(b, "fig6", map[string]metricSpec{
		"idle-always-8rdr-MB/s":  {"idle/always", 3},
		"idle-default-8rdr-MB/s": {"idle/default", 3},
		"busy-always-8rdr-MB/s":  {"busy/always", 3},
	})
}

// BenchmarkFig7Nfsheur reproduces Figure 7: the enlarged nfsheur table
// recovers read-ahead; SlowDown adds nothing beyond it.
func BenchmarkFig7Nfsheur(b *testing.B) {
	runExperiment(b, "fig7", map[string]metricSpec{
		"always-16rdr-MB/s":       {"always", 4},
		"slowdown-new-16rdr-MB/s": {"slowdown/new nfsheur", 4},
		"default-new-16rdr-MB/s":  {"default/new nfsheur", 4},
		"default-old-16rdr-MB/s":  {"default/default nfsheur", 4},
	})
}

// BenchmarkFig8Stride reproduces Figure 8: cursor vs default stride
// throughput.
func BenchmarkFig8Stride(b *testing.B) {
	runExperiment(b, "fig8", map[string]metricSpec{
		"ide1-cursor-s8-MB/s":  {"ide1/cursor", 2},
		"ide1-default-s8-MB/s": {"ide1/default", 2},
	})
}

// BenchmarkTable1Stride reproduces Table 1 (same cells as Figure 8,
// tabulated).
func BenchmarkTable1Stride(b *testing.B) {
	runExperiment(b, "table1", map[string]metricSpec{
		"scsi1-cursor-s2-MB/s":  {"scsi1/cursor", 0},
		"scsi1-default-s2-MB/s": {"scsi1/default", 0},
	})
}

// BenchmarkAblationAging measures the §3 claim that aged file systems
// widen the heuristics' advantage.
func BenchmarkAblationAging(b *testing.B) {
	runExperiment(b, "ablate-aging", map[string]metricSpec{
		"cursor-fresh-MB/s": {"cursor", 0},
		"cursor-aged-MB/s":  {"cursor", 2},
	})
}

// BenchmarkAblationCursors sweeps the per-file cursor budget (§8).
func BenchmarkAblationCursors(b *testing.B) {
	runExperiment(b, "ablate-cursors", map[string]metricSpec{
		"1cursor-MB/s": {"cursor heuristic", 0},
		"8cursor-MB/s": {"cursor heuristic", 3},
	})
}

// BenchmarkAblationNfsheur sweeps nfsheur geometries (§6.3).
func BenchmarkAblationNfsheur(b *testing.B) {
	runExperiment(b, "ablate-nfsheur", map[string]metricSpec{
		"4.x-32rdr-MB/s":   {"15 slots/1 probe (4.x)", 5},
		"paper-32rdr-MB/s": {"64 slots/4 probes (paper)", 5},
	})
}

// BenchmarkAblationWindow sweeps the server read-ahead window.
func BenchmarkAblationWindow(b *testing.B) {
	runExperiment(b, "ablate-window", map[string]metricSpec{
		"w1-MB/s":  {"always heuristic, ide1", 0},
		"w32-MB/s": {"always heuristic, ide1", 3},
	})
}
