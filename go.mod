module nfstricks

go 1.22
