package nfstricks

import (
	"testing"
)

func TestFacadeTestbed(t *testing.T) {
	tb, err := NewTestbed(Options{Seed: 5, Disk: IDE})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.FS.Create("data", 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := RunNFSReaders(tb, []string{"data"})
	tb.K.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4<<20 || res.ThroughputMBps() <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestFacadeHeuristics(t *testing.T) {
	var s HeurState
	s.Reset()
	heuristics := []Heuristic{Default{}, SlowDown{}, Always{}, &CursorHeuristic{}}
	for _, h := range heuristics {
		s.Reset()
		got := h.Update(&s, 0, 8192)
		if got < 1 || got > SeqMax {
			t.Fatalf("%s: count %d out of range", h.Name(), got)
		}
	}
}

func TestFacadeNfsheur(t *testing.T) {
	tbl := NewNfsheurTable(ImprovedNfsheur())
	if _, found := tbl.Lookup(9); found {
		t.Fatal("fresh table found a handle")
	}
	if DefaultNfsheur().Slots >= ImprovedNfsheur().Slots {
		t.Fatal("improved table not larger than the 4.x table")
	}
}

func TestFacadeDiskModels(t *testing.T) {
	if SCSIModel().MediaRateAt(0) <= 0 || IDEModel().MediaRateAt(0) <= 0 {
		t.Fatal("disk models broken")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 13 {
		t.Fatalf("registry has %d entries", len(Experiments()))
	}
	e, ok := LookupExperiment("fig1")
	if !ok || e.ID != "fig1" {
		t.Fatal("LookupExperiment failed")
	}
}

func TestFacadeLiveMode(t *testing.T) {
	fs := NewLiveFS()
	fs.Create(LiveRootFH, "f", []byte("hello live mode"))
	svc := NewLiveService(fs, SlowDown{}, nil)
	srv, err := ServeLive("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialLive("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, size, err := c.Lookup(LiveRootFH, "f")
	if err != nil || size != 15 {
		t.Fatalf("lookup: size=%d err=%v", size, err)
	}
	data, eof, err := c.Read(fh, 6, 4)
	if err != nil || string(data) != "live" || eof {
		t.Fatalf("read %q eof=%v err=%v", data, eof, err)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	if len(ReaderCounts) != 6 || ReaderCounts[5] != 32 {
		t.Fatalf("ReaderCounts = %v", ReaderCounts)
	}
	if names := FilesFor(4); len(names) != 4 {
		t.Fatalf("FilesFor(4) = %v", names)
	}
}

func TestTracerEndToEnd(t *testing.T) {
	var tr Tracer
	tb, err := NewTestbed(Options{Seed: 9, Disk: IDE,
		Server: nfsserverConfigWithTracer(&tr)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.FS.Create("data", 2<<20); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := RunNFSReaders(tb, []string{"data"}); err != nil {
		t.Fatal(err)
	}
	tb.K.Shutdown()
	a := AnalyzeTrace(tr.Records())
	if a.Reads < 200 || a.Files != 1 {
		t.Fatalf("trace analysis: %+v", a)
	}
	if a.SequentialFrac < 0.5 {
		t.Fatalf("sequential workload traced as %.0f%% sequential", 100*a.SequentialFrac)
	}
	if a.ReorderFrac < 0 || a.ReorderFrac > 0.2 {
		t.Fatalf("reorder fraction %.2f implausible for one reader", a.ReorderFrac)
	}
}
