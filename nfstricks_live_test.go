package nfstricks

// Race-oriented tests of the live stack through the public facade: one
// server, many concurrent LiveClients over UDP and TCP simultaneously,
// plus pipelined calls sharing a single client. CI runs these under
// -race; they are the concurrency contract of ServeLive/DialLive.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// startLiveServer serves nFiles patterned files and returns the service
// and its address.
func startLiveServer(t *testing.T, nFiles int, fileSize int) (*LiveService, string) {
	t.Helper()
	fs := NewLiveFS()
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for i := 0; i < nFiles; i++ {
		fs.Create(LiveRootFH, fmt.Sprintf("f%d", i), payload)
	}
	svc := NewLiveService(fs, nil, nil)
	srv, err := ServeLive("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, srv.Addr()
}

// TestLiveManyClientsBothTransports drives one live server with 16
// concurrent clients — 8 over UDP and 8 over TCP at the same time —
// each sequentially reading its own file, and checks data integrity and
// the server's aggregate counters.
func TestLiveManyClientsBothTransports(t *testing.T) {
	const clients = 16
	const fileSize = 128 * 1024
	svc, addr := startLiveServer(t, clients, fileSize)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		network := "udp"
		if i%2 == 0 {
			network = "tcp"
		}
		wg.Add(1)
		go func(i int, network string) {
			defer wg.Done()
			c, err := DialLive(network, addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			fh, size, err := c.Lookup(LiveRootFH, fmt.Sprintf("f%d", i))
			if err != nil {
				errs <- err
				return
			}
			var off uint64
			for off = 0; off < uint64(size); off += 8192 {
				data, _, err := c.Read(fh, off, 8192)
				if err != nil {
					errs <- fmt.Errorf("%s client %d: %w", network, i, err)
					return
				}
				for j, b := range data {
					if b != byte((int(off)+j)*31) {
						errs <- fmt.Errorf("%s client %d: corruption at %d", network, i, int(off)+j)
						return
					}
				}
			}
		}(i, network)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	wantReads := int64(clients * fileSize / 8192)
	if st.Reads != wantReads {
		t.Fatalf("service reads = %d, want %d", st.Reads, wantReads)
	}
	if st.BytesRead != int64(clients*fileSize) {
		t.Fatalf("bytes read = %d, want %d", st.BytesRead, clients*fileSize)
	}
	// Sequential per-file streams must drive confidence up even with 16
	// files live at once — the sharded table must not thrash.
	if st.MaxSeqCount < 8 {
		t.Fatalf("max seqcount = %d with %d concurrent sequential readers", st.MaxSeqCount, clients)
	}
	if ej := svc.Table().Stats().Ejections; ej != 0 {
		t.Fatalf("scaled table ejected %d handles with only %d live files", ej, clients)
	}
}

// TestLiveSharedClientPipelines has 8 goroutines sharing one LiveClient
// over TCP — exercising the XID-demultiplexed pipelining path through
// the facade.
func TestLiveSharedClientPipelines(t *testing.T) {
	const fileSize = 256 * 1024
	_, addr := startLiveServer(t, 1, fileSize)
	c, err := DialLive("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, size, err := c.Lookup(LiveRootFH, "f0")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	span := uint64(size) / goroutines
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * span
			for off := base; off < base+span; off += 8192 {
				data, _, err := c.Read(fh, off, 8192)
				if err != nil {
					errs <- err
					return
				}
				for j, b := range data {
					if b != byte((int(off)+j)*31) {
						errs <- fmt.Errorf("goroutine %d: wrong data at %d", g, int(off)+j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLiveAsyncWritePipeline drives the asynchronous write path
// through the facade under -race: concurrent clients stream UNSTABLE
// writes through biod-style write-behind pipelines over UDP and TCP at
// once, COMMIT, and then every client must have observed one stable
// write verifier and the stable-storage sink must hold exactly the
// written bytes.
func TestLiveAsyncWritePipeline(t *testing.T) {
	const clients = 8
	const fileSize = 64 * 1024
	const chunk = 8192

	fs := NewLiveFS()
	var fhs [clients]LiveFH
	for i := 0; i < clients; i++ {
		fhs[i], _ = fs.Create(LiveRootFH, fmt.Sprintf("w%d", i), make([]byte, fileSize))
	}
	sink := NewMemStableSink()
	svc := NewLiveServiceGather(fs, nil, nil, WriteGatherConfig{
		Window: 2 * time.Millisecond,
		Sink:   sink,
	})
	srv, err := ServeLive("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); svc.Close() })

	pattern := func(off uint64, i, n int) []byte {
		b := make([]byte, n)
		for j := range b {
			b[j] = byte((int(off) + j*3 + i) * 17)
		}
		return b
	}

	var wg sync.WaitGroup
	verfs := make([]uint64, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		network := "udp"
		if i%2 == 0 {
			network = "tcp"
		}
		wg.Add(1)
		go func(i int, network string) {
			defer wg.Done()
			errs <- func() error {
				c, err := DialLive(network, srv.Addr())
				if err != nil {
					return err
				}
				defer c.Close()
				wb := c.NewWriteBehind(fhs[i], 4)
				for off := uint64(0); off < fileSize; off += chunk {
					if err := wb.Write(off, pattern(off, i, chunk)); err != nil {
						return fmt.Errorf("client %d: %w", i, err)
					}
				}
				verf, err := wb.Commit()
				if err != nil {
					return fmt.Errorf("client %d commit: %w", i, err)
				}
				verfs[i] = verf
				return nil
			}()
		}(i, network)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < clients; i++ {
		if verfs[i] != verfs[0] {
			t.Fatalf("verifier not stable across clients: %x vs %x", verfs[i], verfs[0])
		}
	}
	for i := 0; i < clients; i++ {
		img := sink.Bytes(uint64(fhs[i]))
		if len(img) < fileSize {
			t.Fatalf("client %d: stable image %d bytes, want %d", i, len(img), fileSize)
		}
		for off := uint64(0); off < fileSize; off += chunk {
			want := pattern(off, i, chunk)
			for j, b := range want {
				if img[int(off)+j] != b {
					t.Fatalf("client %d: stable image corrupt at %d", i, int(off)+j)
				}
			}
		}
	}
	ws := svc.WriteStats()
	if want := int64(clients * fileSize / chunk); ws.WritesUnstable != want {
		t.Fatalf("unstable writes = %d, want %d", ws.WritesUnstable, want)
	}
	if ws.Commits != clients {
		t.Fatalf("commits = %d, want %d", ws.Commits, clients)
	}
}
